package traffic

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"rate=2000,mix=file:6/make:3/mdc:1,lb=least,queue=32,seed=5",
		"rate=0.5,mix=make:1,lb=rr,queue=0,seed=1",
		"rate=1e6,mix=file:1/mdc:9,lb=affine,queue=100,seed=18446744073709551615",
	}
	for _, in := range cases {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		out := s.String()
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", out, err)
		}
		if s != s2 {
			t.Fatalf("round trip changed spec: %+v vs %+v", s, s2)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec("rate=100")
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultSpec()
	d.Rate = 100
	if s != d {
		t.Fatalf("partial spec did not inherit defaults: %+v vs %+v", s, d)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"rate=0",
		"rate=-3",
		"rate=abc",
		"rate=100,mix=",
		"rate=100,mix=file",
		"rate=100,mix=bogus:1",
		"rate=100,mix=file:x",
		"rate=100,mix=file:1/file:2",
		"rate=100,mix=file:0/make:0",
		"rate=100,mix=file:-1",
		"rate=100,lb=random",
		"rate=100,queue=-1",
		"rate=100,queue=x",
		"rate=100,seed=x",
		"rate=100,bogus=1",
		"noequals",
		"rate=100,mix=file:1,mix=make:1",
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", in)
		}
	}
}

func TestSpecMixClassesOrdered(t *testing.T) {
	s, err := ParseSpec("rate=1,mix=mdc:2/file:1")
	if err != nil {
		t.Fatal(err)
	}
	cs := s.MixClasses()
	if len(cs) != 2 || cs[0] != ClassFile || cs[1] != ClassDisplay {
		t.Fatalf("MixClasses = %v, want [file mdc]", cs)
	}
}

func TestPredictKneeAndRho(t *testing.T) {
	s, err := ParseSpec("rate=100,mix=make:1,queue=0")
	if err != nil {
		t.Fatal(err)
	}
	p := s.Predict(trafficCosts(), 4)
	if p.MeanCallsPerSession != 2 {
		t.Fatalf("mean calls/session %v, want 2 (make profile)", p.MeanCallsPerSession)
	}
	prof := Profiles()[ClassCompile]
	wantS := float64(trafficCosts().ServerServiceCycles(prof.PayloadBytes) + prof.ExtraServiceCycles)
	if p.ServiceMeanCycles != wantS {
		t.Fatalf("E[S] = %v, want %v", p.ServiceMeanCycles, wantS)
	}
	// Deterministic service: E[S^2] must equal E[S]^2 exactly.
	if p.ServiceM2Cycles != wantS*wantS {
		t.Fatalf("E[S^2] = %v, want %v", p.ServiceM2Cycles, wantS*wantS)
	}
	// At the knee the predicted rho is exactly 1 by construction.
	s.Rate = p.KneeSessionsPerSecond
	if k := s.Predict(trafficCosts(), 4); k.Rho < 0.999 || k.Rho > 1.001 {
		t.Fatalf("rho at knee = %v, want 1", k.Rho)
	}
}

// FuzzTrafficSpec feeds the -traffic flag parser arbitrary strings: it
// must never panic, and anything it accepts must render and re-parse to
// the identical spec (the CLI's round-trip contract).
func FuzzTrafficSpec(f *testing.F) {
	f.Add("rate=2000,mix=file:6/make:3/mdc:1,lb=least,queue=32,seed=5")
	f.Add("rate=1")
	f.Add("rate=1e300")
	f.Add("rate=100,mix=file:1000000")
	f.Add("mix=,lb=,queue=,seed=")
	f.Add("rate=100,,,")
	f.Add(strings.Repeat("rate=1,", 100))
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) returned invalid spec %+v: %v", in, s, err)
		}
		out := s.String()
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", out, in, err)
		}
		if s != s2 {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v not identical", in, s, out, s2)
		}
	})
}
