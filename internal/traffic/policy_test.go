package traffic

import (
	"testing"
)

// testFleet is a 7-machine view: balancer 0, three backends on segment
// 0, three on segment 1.
func testFleet() *Fleet {
	return &Fleet{
		Backends:    []int{1, 2, 3, 4, 5, 6},
		SegOf:       []int{0, 0, 0, 0, 1, 1, 1},
		Outstanding: make([]int, 7),
	}
}

func TestPolicyNamesResolve(t *testing.T) {
	for _, name := range PolicyNames() {
		p, ok := PolicyByName(name)
		if !ok || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := PolicyByName("random"); ok {
		t.Fatal("unknown policy resolved")
	}
}

// TestPolicyDeterminism: two fresh instances of the same policy fed the
// same pick/complete sequence must route identically — the property the
// engine's cross-worker determinism rests on.
func TestPolicyDeterminism(t *testing.T) {
	for _, name := range PolicyNames() {
		p1, _ := PolicyByName(name)
		p2, _ := PolicyByName(name)
		f1, f2 := testFleet(), testFleet()
		for i := 0; i < 200; i++ {
			home := i % 2
			a := p1.Pick(f1, home)
			b := p2.Pick(f2, home)
			if a != b {
				t.Fatalf("%s: pick %d diverged: %d vs %d", name, i, a, b)
			}
			f1.Outstanding[a]++
			f2.Outstanding[b]++
			if i%3 == 0 { // retire an old call now and then
				f1.Outstanding[a]--
				f2.Outstanding[b]--
			}
		}
	}
}

// TestPolicySingleBackendEquivalence: with one backend every policy
// must route every call there — policies differ only in choice, never
// in reachability.
func TestPolicySingleBackendEquivalence(t *testing.T) {
	f := &Fleet{Backends: []int{1}, SegOf: []int{0, 0}, Outstanding: make([]int, 2)}
	for _, name := range PolicyNames() {
		p, _ := PolicyByName(name)
		for i := 0; i < 50; i++ {
			if got := p.Pick(f, 0); got != 1 {
				t.Fatalf("%s routed to %d with a single backend", name, got)
			}
			f.Outstanding[1]++
		}
		f.Outstanding[1] = 0
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p, _ := PolicyByName("rr")
	f := testFleet()
	want := []int{1, 2, 3, 4, 5, 6, 1, 2}
	for i, w := range want {
		if got := p.Pick(f, 0); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastPicksMinOutstanding(t *testing.T) {
	p, _ := PolicyByName("least")
	f := testFleet()
	f.Outstanding[1], f.Outstanding[2], f.Outstanding[3] = 5, 2, 2
	f.Outstanding[4], f.Outstanding[5], f.Outstanding[6] = 9, 1, 3
	if got := p.Pick(f, 0); got != 5 {
		t.Fatalf("least picked %d, want 5", got)
	}
	f.Outstanding[5] = 2
	// Tie at 2 between 2, 3, 5: lowest index wins, deterministically.
	if got := p.Pick(f, 0); got != 2 {
		t.Fatalf("least tie-break picked %d, want 2", got)
	}
}

func TestAffineStaysOnHomeSegment(t *testing.T) {
	p, _ := PolicyByName("affine")
	f := testFleet()
	// Load the home-segment backends heavily: affine must still prefer
	// them over idle remote ones.
	f.Outstanding[1], f.Outstanding[2], f.Outstanding[3] = 7, 9, 8
	if got := p.Pick(f, 0); got != 1 {
		t.Fatalf("affine left its home segment: picked %d, want 1", got)
	}
	if got := p.Pick(f, 1); got != 4 {
		t.Fatalf("affine picked %d for segment 1, want 4", got)
	}
}

func TestAffineFallsBackWhenHomeHasNoServers(t *testing.T) {
	p, _ := PolicyByName("affine")
	// Backends only on segment 1; a session homed on segment 0 must fall
	// back to the global least-outstanding backend.
	f := &Fleet{
		Backends:    []int{1, 2},
		SegOf:       []int{0, 1, 1},
		Outstanding: []int{0, 4, 1},
	}
	if got := p.Pick(f, 0); got != 2 {
		t.Fatalf("fallback picked %d, want 2 (global least)", got)
	}
}
