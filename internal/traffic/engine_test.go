package traffic

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"strings"
	"testing"

	"firefly/internal/cluster"
	"firefly/internal/net"
	"firefly/internal/obs"
	"firefly/internal/rpc"
)

// trafficCosts is the transport calibration the analytic comparisons
// price against (the repo defaults).
func trafficCosts() rpc.Config { return rpc.Config{} }

// quickNode mirrors the cluster package's test configuration: every
// pipeline stage shrunk so a fixed cycle budget carries many calls.
func quickNode() rpc.NodeConfig {
	return rpc.NodeConfig{
		Costs: rpc.Config{
			ClientFixedCycles:        300,
			ClientPerByteCentiCycles: 10,
			ServerFixedCycles:        400,
			ServerPerByteCentiCycles: 10,
			ClientFinishCycles:       100,
			PayloadBytes:             64,
		},
		Workers:          2,
		PollCycles:       64,
		RetransmitCycles: 50_000,
	}
}

// fastNet shrinks wire timings the same way the cluster soak tests do.
func fastNet(seed uint64) net.Config {
	return net.Config{WordCycles: 8, GapCycles: 24, Seed: seed}
}

// fnvObserver folds every trace event's fields into a running FNV-64a
// hash: equal hashes over equal-length streams mean byte-identical
// JSONL without encoding millions of events.
type fnvObserver struct {
	h      hash.Hash64
	events uint64
}

func (o *fnvObserver) Observe(e obs.Event) {
	var b [36]byte
	binary.LittleEndian.PutUint64(b[0:], e.Cycle)
	binary.LittleEndian.PutUint32(b[8:], uint32(e.Kind))
	binary.LittleEndian.PutUint32(b[12:], uint32(e.Unit))
	binary.LittleEndian.PutUint32(b[16:], e.Addr)
	binary.LittleEndian.PutUint64(b[20:], e.A)
	binary.LittleEndian.PutUint64(b[28:], e.B)
	o.h.Write(b[:])
	o.h.Write([]byte(e.Label))
	o.events++
}

// engineResult captures one run: the traffic report plus per-machine
// registries and node stats, per-machine trace hashes, and the raw
// JSONL of every segment's event stream.
type engineResult struct {
	report   string
	hashes   []uint64
	events   []uint64
	segJSONL [][]byte
}

// runTraffic builds a cluster with the spec's node patch, attaches the
// traffic engine plus one trace observer per machine and a JSONL sink
// per segment, and drives it either with the serial per-cycle reference
// loop ("step") or the windowed engine ("run") at the given worker
// count.
func runTraffic(t *testing.T, cfg cluster.Config, spec Spec, cycles uint64, engine string, workers int) engineResult {
	t.Helper()
	cfg.NodePatch = spec.NodePatch()
	cl := cluster.New(cfg)
	sinks := make([]*fnvObserver, cl.Size())
	for i, m := range cl.Machines() {
		sinks[i] = &fnvObserver{h: fnv.New64a()}
		m.Trace(sinks[i])
	}
	segBufs := make([]*bytes.Buffer, cl.NumSegments())
	segSinks := make([]*obs.JSONL, cl.NumSegments())
	for k := 0; k < cl.NumSegments(); k++ {
		segBufs[k] = &bytes.Buffer{}
		segSinks[k] = obs.NewJSONL(segBufs[k])
		cl.SegmentAt(k).SetTracer(obs.NewTracer(segSinks[k]))
	}
	eng := Attach(cl, spec)
	switch engine {
	case "step":
		for i := uint64(0); i < cycles; i++ {
			cl.Step()
		}
	case "run":
		cl.SetWorkers(workers)
		cl.Run(cycles)
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	for _, s := range segSinks {
		s.Close()
	}
	var b strings.Builder
	b.WriteString(eng.Report())
	for i, m := range cl.Machines() {
		fmt.Fprintf(&b, "== machine %d ==\n%s\nnode: %+v\n", i, m.Registry().String(), cl.Node(i).Stats())
	}
	res := engineResult{report: b.String()}
	for _, s := range sinks {
		res.hashes = append(res.hashes, s.h.Sum64())
		res.events = append(res.events, s.events)
	}
	for _, buf := range segBufs {
		res.segJSONL = append(res.segJSONL, buf.Bytes())
	}
	return res
}

// diffTraffic compares a run against the serial reference.
func diffTraffic(t *testing.T, label string, ref, got engineResult) {
	t.Helper()
	for i := range ref.hashes {
		if ref.hashes[i] != got.hashes[i] || ref.events[i] != got.events[i] {
			t.Errorf("%s: machine %d trace diverged: %#x/%d events vs %#x/%d",
				label, i, got.hashes[i], got.events[i], ref.hashes[i], ref.events[i])
		}
	}
	for k := range ref.segJSONL {
		if !bytes.Equal(ref.segJSONL[k], got.segJSONL[k]) {
			t.Errorf("%s: segment %d JSONL diverged (%d vs %d bytes)",
				label, k, len(got.segJSONL[k]), len(ref.segJSONL[k]))
		}
	}
	if ref.report != got.report {
		t.Errorf("%s: report diverged\n--- got ---\n%s\n--- want ---\n%s", label, got.report, ref.report)
	}
}

// soakSpec is the determinism soak's workload: a bridged fleet pushed
// past its admission bounds so arrivals, routing, service, shed
// rejections, retransmissions, and bridge crossings all run hot.
func soakSpec(seed uint64) Spec {
	return Spec{
		Rate:  5000,
		Mix:   [NumClasses]int{6, 3, 1},
		LB:    "least",
		Queue: 2,
		Seed:  seed,
	}
}

func soakConfig() cluster.Config {
	return cluster.Config{
		Machines: 6,
		Segments: 3,
		Node:     quickNode(),
		Net:      fastNet(21),
		Seed:     21,
	}
}

// TestTrafficParallelDifferential is the fleet engine's determinism
// contract: the same spec and cluster seed produce byte-identical
// traffic reports, per-machine trace streams, and per-segment JSONL
// whether the cluster is stepped serially or run windowed at worker
// counts 1, 2, and 8. This is the test that licenses every performance
// claim the traffic experiment makes — and it runs under -race in CI.
func TestTrafficParallelDifferential(t *testing.T) {
	const cycles = 600_000
	cfg, spec := soakConfig(), soakSpec(21)
	ref := runTraffic(t, cfg, spec, cycles, "step", 1)
	if ref.events[0] == 0 {
		t.Fatal("reference run emitted no trace events; differential proves nothing")
	}
	if !strings.Contains(ref.report, "shed") {
		t.Fatal("soak report missing shed accounting")
	}
	for _, workers := range []int{1, 2, 8} {
		got := runTraffic(t, cfg, spec, cycles, "run", workers)
		diffTraffic(t, fmt.Sprintf("workers=%d", workers), ref, got)
	}
}

// TestTrafficSeedChangesOutcome: a different engine seed must produce a
// different arrival sequence — identical reports across seeds would
// mean the split streams are not actually consumed.
func TestTrafficSeedChangesOutcome(t *testing.T) {
	const cycles = 300_000
	a := runTraffic(t, soakConfig(), soakSpec(21), cycles, "run", 2)
	b := runTraffic(t, soakConfig(), soakSpec(99), cycles, "run", 2)
	if a.report == b.report {
		t.Fatal("different traffic seeds produced identical reports")
	}
}

// TestTrafficCrossBridgeRouting: on a bridged fleet every call from the
// balancer to a remote segment crosses the bridge; nothing may be
// misrouted, lost as unroutable, or delivered to the wrong station.
func TestTrafficCrossBridgeRouting(t *testing.T) {
	spec := Spec{Rate: 1500, Mix: [NumClasses]int{1, 0, 0}, LB: "rr", Queue: 0, Seed: 5}
	cfg := cluster.Config{
		Machines:  8,
		Segments:  4,
		Node:      quickNode(),
		Net:       fastNet(5),
		Seed:      5,
		NodePatch: spec.NodePatch(),
	}
	cl := cluster.New(cfg)
	eng := Attach(cl, spec)
	cl.Run(2_000_000)
	if eng.CallsCompleted() == 0 {
		t.Fatal("no calls completed")
	}
	br := cl.Bridge()
	if br == nil {
		t.Fatal("topology not bridged")
	}
	if br.Stats().Forwarded.Value() == 0 {
		t.Fatal("round-robin over 4 segments never crossed the bridge")
	}
	if u := br.Stats().Unroutable.Value(); u != 0 {
		t.Errorf("%d unroutable frames at the bridge", u)
	}
	for i := 0; i < cl.Size(); i++ {
		st := cl.Node(i).Stats()
		if m := st.Misrouted.Value(); m != 0 {
			t.Errorf("node %d saw %d misrouted frames", i, m)
		}
	}
	// rr over 7 backends: every backend must have served something.
	for i := 1; i < cl.Size(); i++ {
		if cl.Node(i).Stats().Served.Value() == 0 {
			t.Errorf("backend %d served nothing under round-robin", i)
		}
	}
}

// TestTrafficAdmissionControlExactlyOnce: with a tiny queue bound under
// overload, every issued call reaches exactly one disposition — served,
// shed, or failed — and the engine's ledger reconciles with the
// runtime's counters on both sides of the wire.
func TestTrafficAdmissionControlExactlyOnce(t *testing.T) {
	spec := Spec{Rate: 8000, Mix: [NumClasses]int{0, 1, 0}, LB: "least", Queue: 1, Seed: 3}
	node := quickNode()
	node.RetransmitCycles = 2_000_000
	cfg := cluster.Config{
		Machines:  3,
		Node:      node,
		Net:       fastNet(3),
		Seed:      3,
		NodePatch: spec.NodePatch(),
	}
	cl := cluster.New(cfg)
	eng := Attach(cl, spec)
	cl.Run(3_000_000)

	issued, completed := eng.CallsIssued(), eng.CallsCompleted()
	shed, failed := eng.CallsShed(), eng.CallsFailed()
	if shed == 0 {
		t.Fatal("overloaded queue bound of 1 shed nothing")
	}
	if completed == 0 {
		t.Fatal("admission control starved the fleet completely")
	}
	if failed != 0 {
		t.Errorf("%d calls failed; rejection replies should beat the retransmit budget", failed)
	}
	if got := completed + shed + failed + uint64(eng.InFlight()); got != issued {
		t.Errorf("dispositions %d + in-flight do not reconcile with %d issued", got, issued)
	}
	lb := cl.Node(0).Stats()
	if lb.ShedReplies.Value() != shed {
		t.Errorf("client saw %d shed replies, engine counted %d", lb.ShedReplies.Value(), shed)
	}
	var serverShed, served uint64
	for i := 1; i < cl.Size(); i++ {
		st := cl.Node(i).Stats()
		serverShed += st.CallsShed.Value()
		served += st.Served.Value()
	}
	if serverShed < shed {
		t.Errorf("servers shed %d but clients saw %d rejections", serverShed, shed)
	}
	if served < completed {
		t.Errorf("servers served %d but %d calls completed", served, completed)
	}
	// The dedup cache must answer retransmitted sheds without double
	// counting: completions can never exceed distinct calls received.
	var received uint64
	for i := 1; i < cl.Size(); i++ {
		received += cl.Node(i).Stats().CallsReceived.Value()
	}
	if completed > received {
		t.Errorf("%d completions exceed %d distinct calls received", completed, received)
	}
	// Queue bound respected: no server's dispatch queue ever grew past it.
	for i := 1; i < cl.Size(); i++ {
		if qp := cl.Node(i).QueuePeak(); qp > spec.Queue {
			t.Errorf("backend %d queue peaked at %d, bound %d", i, qp, spec.Queue)
		}
	}
}

// BenchmarkFleetTrafficCycle measures fleet cycles/sec with the traffic
// driver attached: the 16-machine, 4-segment experiment topology under
// the default mix. One iteration is one cluster cycle.
func BenchmarkFleetTrafficCycle(b *testing.B) {
	spec := DefaultSpec()
	spec.Rate = 2000
	cfg := cluster.Config{
		Machines:  16,
		Segments:  4,
		Seed:      11,
		NodePatch: spec.NodePatch(),
	}
	cfg.Node.RetransmitCycles = 2_000_000
	cl := cluster.New(cfg)
	Attach(cl, spec)
	cl.Run(200_000) // warm the fleet past the first arrivals
	b.ResetTimer()
	cl.Run(uint64(b.N))
}
