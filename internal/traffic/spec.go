// Package traffic is the fleet-level workload engine: an open-loop
// population of simulated users driving mixed request classes against a
// multi-node Firefly cluster through a load-balancing front end.
//
// The paper's argument is that a Firefly earns its keep under real
// multi-user load — RPC file service, compile farms, remote display
// sessions sharing one coherent machine (§5–§6). This package asks the
// production version of that question on the cluster substrate: sessions
// arrive in an open-loop Poisson process (arrivals never wait for
// completions, so offered load is a free variable), each session issues
// a class-dependent burst of RPC calls, and a load-balancer node routes
// every call to a server machine over the simulated bridged Ethernet —
// wire topology is part of the experiment. The report carries what
// production cares about: goodput vs offered load, fleet-wide p50/p95/
// p99 latency from merged log-bucketed histograms, shed vs admitted
// under admission control, and per-node saturation held against the
// §5.2-style queuing model (see Predict).
//
// Determinism contract: the engine is a device on the load-balancer
// machine, all of its state is stepped inside that machine's own cycle
// loop, and every random draw (inter-arrival gaps, class selection,
// session homes) comes from split streams of the spec seed — so a fixed
// spec and cluster seed reproduce byte-identical reports, trace streams,
// and segment JSONL at any cluster worker count, exactly like the
// cluster engine itself.
package traffic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Class is a request class: which kind of work a session asks of the
// fleet. The three classes are the paper's three workloads, priced with
// the repo's own calibrations.
type Class uint8

const (
	// ClassFile is RPC file service: one internal/fs block (128
	// longwords = 512 bytes) per call, served at the transport's
	// per-byte cost — the paper's remote file access workload.
	ClassFile Class = iota
	// ClassCompile is a ParallelMake compile job: a small request that
	// holds the server for one internal/workload standard build leaf
	// (40k cycles — the cost fireflysim's make workload uses).
	ClassCompile
	// ClassDisplay is a remote display burst on the MDC path: a rapid
	// run of tile paints, each priced at a 64x64 tile at the display
	// controller's 5/8 cycle-per-pixel rate.
	ClassDisplay

	// NumClasses is the class count.
	NumClasses = 3
)

// classNames are the spec-string names, in Class order.
var classNames = [NumClasses]string{"file", "make", "mdc"}

// String returns the class's spec-string name.
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Profile describes one request class: its wire footprint, its extra
// service demand beyond the transport's payload-derived cost, and its
// session shape.
type Profile struct {
	// Proc is the RPC procedure number requests of this class carry;
	// the server's NodeConfig.ProcService prices it.
	Proc uint16
	// PayloadBytes is the request payload.
	PayloadBytes int
	// ExtraServiceCycles is added to the server's payload-derived
	// service cost for this class.
	ExtraServiceCycles uint64
	// CallsPerSession is how many calls one session of this class
	// issues, sequentially.
	CallsPerSession int
	// ThinkCycles separates a session's calls (completion to next
	// issue).
	ThinkCycles uint64
}

// Profiles returns the built-in class profiles, indexed by Class.
func Profiles() [NumClasses]Profile {
	return [NumClasses]Profile{
		// 512 B = one fs.BlockWords sector; the transport's per-byte
		// server cost stands in for cache lookup + marshal.
		ClassFile: {Proc: 10, PayloadBytes: 512, ExtraServiceCycles: 0,
			CallsPerSession: 4, ThinkCycles: 20_000},
		// One StandardBuild leaf: 40_000 cycles of compilation per job.
		ClassCompile: {Proc: 11, PayloadBytes: 128, ExtraServiceCycles: 40_000,
			CallsPerSession: 2, ThinkCycles: 50_000},
		// A 64x64 tile at the MDC's 5/8 cycle/pixel: 2_560 cycles,
		// bursty (short thinks, many calls).
		ClassDisplay: {Proc: 12, PayloadBytes: 512, ExtraServiceCycles: 2_560,
			CallsPerSession: 6, ThinkCycles: 4_000},
	}
}

// Spec is a parsed traffic specification: the open-loop arrival process,
// the class mix, the load-balancing policy, and the admission-control
// bound. The zero value is not valid; use ParseSpec or DefaultSpec.
type Spec struct {
	// Rate is session arrivals per simulated second. The process is
	// open-loop: arrivals never wait for completions.
	Rate float64
	// Mix weights the classes (file, make, mdc); a zero weight disables
	// the class. Weights are relative, not normalized.
	Mix [NumClasses]int
	// LB names the load-balancing policy: rr, least, or affine.
	LB string
	// Queue bounds each server's dispatch queue (admission control);
	// 0 disables shedding.
	Queue int
	// Seed drives the engine's split random streams (default 1).
	Seed uint64
}

// DefaultSpec is a moderate mixed load: mostly file service, some
// compile jobs, some display bursts, least-outstanding balancing, and a
// 32-call admission bound.
func DefaultSpec() Spec {
	return Spec{
		Rate:  400,
		Mix:   [NumClasses]int{6, 3, 1},
		LB:    "least",
		Queue: 32,
		Seed:  1,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if !(s.Rate > 0) || s.Rate > 1e9 {
		return fmt.Errorf("traffic: rate %v out of range (need 0 < rate <= 1e9)", s.Rate)
	}
	total := 0
	for c, w := range s.Mix {
		if w < 0 || w > 1_000_000 {
			return fmt.Errorf("traffic: mix weight %s:%d out of range", Class(c), w)
		}
		total += w
	}
	if total == 0 {
		return fmt.Errorf("traffic: empty class mix")
	}
	if _, ok := PolicyByName(s.LB); !ok {
		return fmt.Errorf("traffic: unknown lb policy %q (known: %s)",
			s.LB, strings.Join(PolicyNames(), ", "))
	}
	if s.Queue < 0 || s.Queue > 1_000_000 {
		return fmt.Errorf("traffic: queue bound %d out of range", s.Queue)
	}
	return nil
}

// String renders the spec in the canonical ParseSpec syntax;
// ParseSpec(s.String()) reproduces s exactly (the fuzzer's round-trip
// property).
func (s Spec) String() string {
	var mix []string
	for c, w := range s.Mix {
		if w > 0 {
			mix = append(mix, fmt.Sprintf("%s:%d", Class(c), w))
		}
	}
	return fmt.Sprintf("rate=%g,mix=%s,lb=%s,queue=%d,seed=%d",
		s.Rate, strings.Join(mix, "/"), s.LB, s.Queue, s.Seed)
}

// ParseSpec parses a traffic spec string — the fireflysim -traffic
// flag. Comma-separated key=value pairs:
//
//	rate=N        session arrivals per simulated second (required > 0)
//	mix=SPEC      class weights, e.g. file:6/make:3/mdc:1 (default the
//	              DefaultSpec mix); omitted classes get weight 0
//	lb=NAME       load-balancing policy: rr, least, affine (default least)
//	queue=N       per-server admission bound, 0 = unbounded (default 32)
//	seed=N        engine random seed (default 1)
//
// Unknown keys, malformed numbers, and empty mixes are errors, never
// panics: the string is user input.
func ParseSpec(in string) (Spec, error) {
	s := DefaultSpec()
	if strings.TrimSpace(in) == "" {
		return Spec{}, fmt.Errorf("traffic: empty spec")
	}
	seenMix := false
	for _, part := range strings.Split(in, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("traffic: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("traffic: rate %q: %v", val, err)
			}
			s.Rate = f
		case "mix":
			if seenMix {
				return Spec{}, fmt.Errorf("traffic: duplicate mix")
			}
			seenMix = true
			s.Mix = [NumClasses]int{}
			for _, m := range strings.Split(val, "/") {
				name, w, ok := strings.Cut(m, ":")
				if !ok {
					return Spec{}, fmt.Errorf("traffic: mix entry %q is not class:weight", m)
				}
				c, ok := classByName(strings.TrimSpace(name))
				if !ok {
					return Spec{}, fmt.Errorf("traffic: unknown class %q (known: %s)",
						name, strings.Join(classNames[:], ", "))
				}
				n, err := strconv.Atoi(strings.TrimSpace(w))
				if err != nil {
					return Spec{}, fmt.Errorf("traffic: mix weight %q: %v", w, err)
				}
				if s.Mix[c] != 0 {
					return Spec{}, fmt.Errorf("traffic: class %s repeated in mix", c)
				}
				s.Mix[c] = n
			}
		case "lb":
			s.LB = val
		case "queue":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("traffic: queue %q: %v", val, err)
			}
			s.Queue = n
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("traffic: seed %q: %v", val, err)
			}
			if n == 0 {
				n = 1
			}
			s.Seed = n
		default:
			return Spec{}, fmt.Errorf("traffic: unknown key %q", key)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// classByName resolves a spec-string class name.
func classByName(name string) (Class, bool) {
	for c, n := range classNames {
		if n == name {
			return Class(c), true
		}
	}
	return 0, false
}

// MixClasses returns the classes with non-zero weight, in Class order
// (the deterministic iteration the engine and reports use).
func (s Spec) MixClasses() []Class {
	var cs []Class
	for c, w := range s.Mix {
		if w > 0 {
			cs = append(cs, Class(c))
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}
