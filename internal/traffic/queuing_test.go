package traffic

import (
	"math"
	"testing"

	"firefly/internal/cluster"
	"firefly/internal/rpc"
	"firefly/internal/sim"
)

// makeOnlySpec is the queuing differential's workload: compile jobs
// only, so every call has the same deterministic 44k-cycle service time
// (M/D/1 — E[S^2] = E[S]^2) and the servers, not the wire, are the
// bottleneck (a make call moves 128 bytes but holds the server for a
// 40k-cycle build leaf).
func makeOnlySpec(rate float64, queue int, seed uint64) Spec {
	return Spec{Rate: rate, Mix: [NumClasses]int{0, 1, 0}, LB: "least", Queue: queue, Seed: seed}
}

// queuingNode uses the repo's default transport calibration (the
// MicroVAX-era §5.2 costs) with a retransmit timer far past any queueing
// delay the admission bound allows, so the latency tail measures the
// queue and not duplicate suppression.
func queuingNode() rpc.NodeConfig {
	return rpc.NodeConfig{RetransmitCycles: 4_000_000}
}

// runQueuing drives a make-only fleet for the given simulated seconds
// and returns the engine.
func runQueuing(t *testing.T, machines int, spec Spec, secs float64) (*cluster.Cluster, *Engine) {
	t.Helper()
	cl := cluster.New(cluster.Config{
		Machines:  machines,
		Node:      queuingNode(),
		Net:       fastNet(spec.Seed),
		Seed:      spec.Seed,
		NodePatch: spec.NodePatch(),
	})
	eng := Attach(cl, spec)
	cl.RunSeconds(secs)
	return cl, eng
}

// TestQueuingUtilizationMatchesModel: below the knee, each server's
// measured utilization (service cycles charged by its worker / elapsed)
// must sit within 20% of the analytic lambda*E[S] computed from the
// calls it actually served — the §5.2-style saturation model holding on
// the cycle-accurate fleet.
func TestQueuingUtilizationMatchesModel(t *testing.T) {
	pred := makeOnlySpec(1, 0, 17).Predict(trafficCosts(), 4)
	// Aim each of the 4 backends at rho ~= 0.5.
	rate := pred.KneeSessionsPerSecond * 0.5
	cl, eng := runQueuing(t, 5, makeOnlySpec(rate, 0, 17), 2.0)

	if eng.CallsFailed() != 0 || eng.CallsShed() != 0 {
		t.Fatalf("below-knee run lost calls: %d failed, %d shed", eng.CallsFailed(), eng.CallsShed())
	}
	if eng.CallsCompleted() < 300 {
		t.Fatalf("only %d calls completed; too few for the differential", eng.CallsCompleted())
	}
	elapsed := float64(eng.Elapsed())
	for i := 1; i < cl.Size(); i++ {
		st := cl.Node(i).Stats()
		served := float64(st.Served.Value())
		if served == 0 {
			t.Errorf("backend %d served nothing", i)
			continue
		}
		measured := float64(st.ServiceCycles.Value()) / elapsed
		analytic := served / elapsed * pred.ServiceMeanCycles
		if ratio := measured / analytic; math.Abs(ratio-1) > 0.20 {
			t.Errorf("backend %d: measured util %.4f vs analytic %.4f (ratio %.3f, want within 20%%)",
				i, measured, analytic, ratio)
		}
	}
}

// TestQueuingLatencyInflationMatchesPK: a single-backend fleet is an
// M/D/1 queue, so raising the offered load from rho~0.2 to rho~0.6 must
// inflate mean latency by the Pollaczek–Khinchine waiting-time
// difference — within 20%, measured against the arrival rates the runs
// actually sustained. Differencing two operating points cancels the
// constant client, wire, and service components, leaving pure queueing.
func TestQueuingLatencyInflationMatchesPK(t *testing.T) {
	pred := makeOnlySpec(1, 0, 23).Predict(trafficCosts(), 1)
	const secs = 6.0
	run := func(frac float64, seed uint64) (meanLat, waitPred float64) {
		_, eng := runQueuing(t, 2, makeOnlySpec(pred.KneeSessionsPerSecond*frac, 0, seed), secs)
		if eng.CallsFailed() != 0 {
			t.Fatalf("run at %.1fx knee failed %d calls", frac, eng.CallsFailed())
		}
		n := eng.FleetHist().Count()
		if n < 200 {
			t.Fatalf("run at %.1fx knee completed only %d calls", frac, n)
		}
		lambda := float64(n) / float64(eng.Elapsed()) // calls per cycle, as sustained
		rho := lambda * pred.ServiceMeanCycles
		if rho >= 1 {
			t.Fatalf("run at %.1fx knee measured rho %.2f >= 1", frac, rho)
		}
		return eng.FleetHist().Mean(), lambda * pred.ServiceM2Cycles / (2 * (1 - rho))
	}
	lowLat, lowWait := run(0.2, 23)
	highLat, highWait := run(0.6, 23)
	gotInflation := highLat - lowLat
	wantInflation := highWait - lowWait
	if wantInflation <= 0 {
		t.Fatalf("degenerate prediction: wait %.0f -> %.0f cycles", lowWait, highWait)
	}
	if ratio := gotInflation / wantInflation; math.Abs(ratio-1) > 0.20 {
		t.Errorf("latency inflation %.0f cycles vs PK prediction %.0f (ratio %.3f, want within 20%%)",
			gotInflation, wantInflation, ratio)
	}
}

// TestQueuingAdmissionPreventsCollapse: 1.3x past the knee an open-loop
// arrival process overcommits the fleet for good — but with a bounded
// server queue the excess is shed as explicit rejections, goodput holds
// near capacity, no call dies on the retransmit budget, and the tail
// stays bounded by the queue rather than growing with the backlog.
func TestQueuingAdmissionPreventsCollapse(t *testing.T) {
	pred := makeOnlySpec(1, 16, 31).Predict(trafficCosts(), 1)
	cl, eng := runQueuing(t, 2, makeOnlySpec(pred.KneeSessionsPerSecond*1.3, 16, 31), 4.0)

	capacity := 1e9 / sim.CycleNS / pred.ServiceMeanCycles // calls/s one server can retire
	if g := eng.Goodput(); g < 0.7*capacity {
		t.Errorf("goodput %.1f calls/s collapsed below 70%% of capacity %.1f", g, capacity)
	}
	if eng.CallsShed() == 0 {
		t.Error("no calls shed 30% past the knee; admission control inactive")
	}
	if f := eng.CallsFailed(); f != 0 {
		t.Errorf("%d calls exhausted the retransmit budget; rejections should answer first", f)
	}
	// The p99 latency must be bounded by the queue the server admits
	// (16 calls deep plus slack), not by the unbounded open-loop backlog.
	bound := uint64(float64(16+6) * pred.ServiceMeanCycles)
	if p99 := eng.FleetHist().Percentile(0.99); p99 > bound {
		t.Errorf("p99 %d cycles exceeds queue-implied bound %d", p99, bound)
	}
	if qp := cl.Node(1).QueuePeak(); qp > 16 {
		t.Errorf("server queue peaked at %d, bound 16", qp)
	}
}
