package traffic

// Fleet is the routing view the load-balancing policies see: the backend
// machine indexes, their segments, and the balancer's live in-flight
// counts. All of it is engine state mutated only on the load-balancer
// machine's cycle loop, so policy decisions are deterministic at any
// cluster worker count.
type Fleet struct {
	// Backends are the server machine indexes, ascending.
	Backends []int
	// SegOf maps a machine index to its Ethernet segment.
	SegOf []int
	// Outstanding counts the balancer's in-flight calls per machine
	// index (only backend entries are ever non-zero).
	Outstanding []int
}

// Policy picks a backend machine for the next call. home is the
// session's home segment (drawn at session creation); non-affine
// policies ignore it. Pick must be a pure function of the Fleet view,
// its own private state, and home.
type Policy interface {
	Name() string
	Pick(f *Fleet, home int) int
}

// rrPolicy cycles through the backends in index order.
type rrPolicy struct{ next int }

func (p *rrPolicy) Name() string { return "rr" }

func (p *rrPolicy) Pick(f *Fleet, home int) int {
	b := f.Backends[p.next%len(f.Backends)]
	p.next++
	return b
}

// leastPolicy picks the backend with the fewest in-flight calls, lowest
// index on ties — the balancer's view of queue depth, not the server's.
type leastPolicy struct{}

func (leastPolicy) Name() string { return "least" }

func (leastPolicy) Pick(f *Fleet, home int) int {
	best := f.Backends[0]
	for _, b := range f.Backends[1:] {
		if f.Outstanding[b] < f.Outstanding[best] {
			best = b
		}
	}
	return best
}

// affinePolicy keeps a session's calls on its home segment — least
// outstanding among the backends that share the session's wire, so
// steady traffic never crosses the bridge — falling back to the global
// least-outstanding backend when the home segment hosts no servers
// (e.g. the balancer-only segment of a small fleet).
type affinePolicy struct{}

func (affinePolicy) Name() string { return "affine" }

func (affinePolicy) Pick(f *Fleet, home int) int {
	best := -1
	for _, b := range f.Backends {
		if f.SegOf[b] != home {
			continue
		}
		if best < 0 || f.Outstanding[b] < f.Outstanding[best] {
			best = b
		}
	}
	if best >= 0 {
		return best
	}
	return leastPolicy{}.Pick(f, home)
}

// PolicyByName returns a fresh policy instance (rr carries a cursor, so
// instances are not shareable across engines).
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "rr":
		return &rrPolicy{}, true
	case "least":
		return leastPolicy{}, true
	case "affine":
		return affinePolicy{}, true
	}
	return nil, false
}

// PolicyNames lists the known policies in spec order.
func PolicyNames() []string { return []string{"rr", "least", "affine"} }
