package traffic

import (
	"math"

	"firefly/internal/rpc"
	"firefly/internal/sim"
)

// Prediction is the §5.2-style queuing view of a traffic spec on a
// fleet: each server member is one M/G/1 station (the runtime's
// per-connection mutex serializes its workers, so a node really is a
// single server with a FIFO queue), fed a balanced share of a Poisson
// call stream whose service time is drawn from the class mix.
type Prediction struct {
	// CallsPerSecond is the total offered call rate implied by the
	// session arrival rate and the mix's calls-per-session.
	CallsPerSecond float64
	// MeanCallsPerSession is the mix-weighted session length.
	MeanCallsPerSession float64
	// ServiceMeanCycles and ServiceM2Cycles are E[S] and E[S²] of one
	// call's server-station service time, in cycles.
	ServiceMeanCycles float64
	ServiceM2Cycles   float64
	// Rho is each server's utilization at the offered rate (λ·E[S] with
	// the call stream split evenly across the backends).
	Rho float64
	// WaitCycles is the Pollaczek–Khinchine mean queueing delay
	// λ·E[S²] / (2·(1−ρ)) per call; +Inf at or past the knee.
	WaitCycles float64
	// KneeSessionsPerSecond is the session arrival rate at which ρ
	// reaches 1 — the capacity knee past which an open-loop fleet
	// without admission control collapses.
	KneeSessionsPerSecond float64
}

// Predict evaluates the spec against the analytic model for a fleet
// with the given number of server members and transport cost
// calibration. The model prices exactly what the runtime charges its
// worker per call — the payload-derived station cost plus the class's
// ProcService extra — and deliberately ignores wire time and client
// overhead, which add latency but not server load.
func (s Spec) Predict(costs rpc.Config, backends int) Prediction {
	profiles := Profiles()
	var p Prediction
	totalW := 0
	for _, w := range s.Mix {
		totalW += w
	}
	if totalW == 0 || backends < 1 || !(s.Rate > 0) {
		return p
	}
	// Per-call class probabilities: a class's share of calls is its
	// session weight times its calls per session.
	var callW float64
	for c, w := range s.Mix {
		if w == 0 {
			continue
		}
		prof := profiles[c]
		p.MeanCallsPerSession += float64(w) / float64(totalW) * float64(prof.CallsPerSession)
		callW += float64(w) * float64(prof.CallsPerSession)
	}
	for c, w := range s.Mix {
		if w == 0 {
			continue
		}
		prof := profiles[c]
		svc := float64(costs.ServerServiceCycles(prof.PayloadBytes) + prof.ExtraServiceCycles)
		pc := float64(w) * float64(prof.CallsPerSession) / callW
		p.ServiceMeanCycles += pc * svc
		p.ServiceM2Cycles += pc * svc * svc
	}
	p.CallsPerSecond = s.Rate * p.MeanCallsPerSession
	cyclesPerSec := 1e9 / sim.CycleNS
	lambda := p.CallsPerSecond / float64(backends) / cyclesPerSec // calls per cycle per node
	p.Rho = lambda * p.ServiceMeanCycles
	if p.Rho < 1 {
		p.WaitCycles = lambda * p.ServiceM2Cycles / (2 * (1 - p.Rho))
	} else {
		p.WaitCycles = math.Inf(1)
	}
	p.KneeSessionsPerSecond = float64(backends) * cyclesPerSec /
		p.ServiceMeanCycles / p.MeanCallsPerSession
	return p
}
