package traffic

import (
	"container/heap"
	"fmt"
	"math"
	"strings"

	"firefly/internal/cluster"
	"firefly/internal/rpc"
	"firefly/internal/sim"
	"firefly/internal/stats"
)

// session is one simulated user: a class, a home segment, and a bounded
// run of sequential calls separated by think time. Sessions are a few
// dozen bytes and live on a heap keyed by next-issue cycle, so the
// population scales to millions without per-user goroutines or threads.
type session struct {
	seq       uint64 // creation order; tie-break for equal due cycles
	class     Class
	home      int // home segment (affine routing)
	remaining int // calls left to issue
	due       sim.Cycle
}

// sessionHeap orders sessions by (due, seq): earliest next issue first,
// creation order on ties, so the issue sequence is a pure function of
// engine state.
type sessionHeap []*session

func (h sessionHeap) Len() int { return len(h) }
func (h sessionHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h sessionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sessionHeap) Push(x interface{}) { *h = append(*h, x.(*session)) }
func (h *sessionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// classAccount accumulates per-class outcomes.
type classAccount struct {
	sessions  uint64
	issued    uint64
	completed uint64
	shed      uint64
	failed    uint64
	hist      stats.LogHist
}

// Engine drives an open-loop user population against a cluster. It is a
// machine device on the load-balancer machine (member 0): arrivals,
// class draws, routing decisions, and outcome accounting all happen
// inside that one machine's cycle loop, which is what makes the whole
// workload byte-identical at any cluster Workers setting — the parallel
// engine already guarantees each member machine's own execution is.
//
// Member 0 terminates the simulated users and issues their calls as real
// RPCs to the server members over the simulated wire, so the balancer's
// segment, the bridge crossings, and the DEQNA/DMA path are all part of
// what the experiment measures.
type Engine struct {
	spec     Spec
	profiles [NumClasses]Profile
	cl       *cluster.Cluster
	lb       *rpc.Node
	clock    *sim.Clock
	fleet    Fleet
	policy   Policy

	arrivalRand *sim.Rand // inter-arrival gaps
	classRand   *sim.Rand // session class draws
	homeRand    *sim.Rand // session home-segment draws

	meanGapCycles float64
	nextArrival   sim.Cycle
	mixTotal      int

	ready   sessionHeap // sessions whose next issue is scheduled
	seq     uint64
	started sim.Cycle // attach cycle; elapsed and rates measure from here

	sessionsStarted  uint64
	sessionsFinished uint64
	class            [NumClasses]classAccount
	fleetHist        stats.LogHist
	outstandingPeak  []int // per machine index
}

// Attach builds the engine for spec, registers it as a device on the
// cluster's member 0, and starts the RPC server on every other member.
// The cluster should have been built with spec.NodePatch() so the
// servers carry the spec's admission bound and per-class service
// pricing. Panics on an invalid spec or a cluster too small to have
// backends, like the other config-time constructors in this repo.
func Attach(cl *cluster.Cluster, spec Spec) *Engine {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if cl.Size() < 2 {
		panic("traffic: need at least one backend besides the balancer")
	}
	e := &Engine{
		spec:     spec,
		profiles: Profiles(),
		cl:       cl,
		lb:       cl.Node(0),
		clock:    cl.Machine(0).Clock(),
		started:  cl.Machine(0).Clock().Now(),
	}
	e.fleet.Outstanding = make([]int, cl.Size())
	e.outstandingPeak = make([]int, cl.Size())
	e.fleet.SegOf = make([]int, cl.Size())
	for i := 0; i < cl.Size(); i++ {
		e.fleet.SegOf[i] = cl.SegmentOf(i)
		if i > 0 {
			e.fleet.Backends = append(e.fleet.Backends, i)
			cl.Node(i).StartServer()
		}
	}
	p, ok := PolicyByName(spec.LB)
	if !ok {
		panic("traffic: unknown policy " + spec.LB)
	}
	e.policy = p
	for _, w := range spec.Mix {
		e.mixTotal += w
	}
	root := sim.NewRand(spec.Seed)
	e.arrivalRand = root.Split()
	e.classRand = root.Split()
	e.homeRand = root.Split()
	// Cycles per simulated second / arrivals per second.
	e.meanGapCycles = (1e9 / sim.CycleNS) / spec.Rate
	e.nextArrival = e.started + e.drawGap()
	cl.Machine(0).AddDevice(e)
	return e
}

// Spec returns the traffic specification the engine runs.
func (e *Engine) Spec() Spec { return e.spec }

// drawGap draws one exponential inter-arrival gap (a Poisson process in
// discrete cycles, floored at one cycle).
func (e *Engine) drawGap() sim.Cycle {
	u := e.arrivalRand.Float64()
	g := -math.Log(1-u) * e.meanGapCycles
	if g < 1 {
		return 1
	}
	if g > 1e18 {
		return sim.Cycle(1e18)
	}
	return sim.Cycle(g)
}

// drawClass draws a session class by mix weight.
func (e *Engine) drawClass() Class {
	r := e.classRand.Intn(e.mixTotal)
	for c, w := range e.spec.Mix {
		if r < w {
			return Class(c)
		}
		r -= w
	}
	return ClassFile // unreachable: weights sum to mixTotal
}

// Step implements machine.Stepper on the balancer machine: admit every
// arrival due by now and issue every session whose think time expired.
func (e *Engine) Step() {
	now := e.clock.Now()
	for e.nextArrival <= now {
		e.startSession()
		e.nextArrival += e.drawGap()
	}
	for len(e.ready) > 0 && e.ready[0].due <= now {
		s := heap.Pop(&e.ready).(*session)
		e.issueCall(s)
	}
}

// NextEvent implements machine.EventStepper: the next arrival or the
// earliest scheduled issue, whichever is sooner. Arrivals never stop, so
// the engine always has a future event; the machine big-steps the gaps.
func (e *Engine) NextEvent(now sim.Cycle) sim.Cycle {
	ev := e.nextArrival
	if len(e.ready) > 0 && e.ready[0].due < ev {
		ev = e.ready[0].due
	}
	if ev <= now {
		return now + 1
	}
	return ev
}

// startSession admits one arriving user: draw its class and home
// segment, then issue its first call immediately.
func (e *Engine) startSession() {
	c := e.drawClass()
	s := &session{
		seq:       e.seq,
		class:     c,
		home:      e.homeRand.Intn(e.cl.NumSegments()),
		remaining: e.profiles[c].CallsPerSession,
	}
	e.seq++
	e.sessionsStarted++
	e.class[c].sessions++
	e.issueCall(s)
}

// issueCall routes one call for s through the policy and issues it on
// the balancer's RPC runtime. The outcome callback fires on this same
// machine's cycle loop when the reply (or rejection, or retransmit
// failure) lands.
func (e *Engine) issueCall(s *session) {
	s.remaining--
	prof := e.profiles[s.class]
	dst := e.policy.Pick(&e.fleet, s.home)
	e.fleet.Outstanding[dst]++
	if e.fleet.Outstanding[dst] > e.outstandingPeak[dst] {
		e.outstandingPeak[dst] = e.fleet.Outstanding[dst]
	}
	e.class[s.class].issued++
	e.lb.Issue(dst, prof.PayloadBytes, prof.Proc, func(o rpc.CallOutcome) {
		e.onOutcome(s, dst, o)
	})
}

// onOutcome accounts one call disposition and schedules the session's
// next call (or retires the session).
func (e *Engine) onOutcome(s *session, dst int, o rpc.CallOutcome) {
	e.fleet.Outstanding[dst]--
	acc := &e.class[s.class]
	switch {
	case o.Failed:
		acc.failed++
	case o.Shed:
		acc.shed++
	default:
		acc.completed++
		acc.hist.Observe(uint64(o.Latency))
		e.fleetHist.Observe(uint64(o.Latency))
	}
	if s.remaining > 0 {
		s.due = e.clock.Now() + sim.Cycle(e.profiles[s.class].ThinkCycles)
		heap.Push(&e.ready, s)
		return
	}
	e.sessionsFinished++
}

// ProcService prices every class's procedure number for the server
// runtime (rpc.NodeConfig.ProcService).
func (s Spec) ProcService() map[uint16]uint64 {
	ps := make(map[uint16]uint64, NumClasses)
	for _, p := range Profiles() {
		ps[p.Proc] = p.ExtraServiceCycles
	}
	return ps
}

// NodePatch returns the cluster.Config.NodePatch for this spec: server
// members get the admission bound and the per-class service pricing,
// while the balancer (member 0) keeps the base client configuration.
func (s Spec) NodePatch() func(i int, cfg rpc.NodeConfig) rpc.NodeConfig {
	ps := s.ProcService()
	return func(i int, cfg rpc.NodeConfig) rpc.NodeConfig {
		if i == 0 {
			return cfg
		}
		cfg.MaxQueue = s.Queue
		cfg.ProcService = ps
		return cfg
	}
}

// Accessors for tests and reports.

// SessionsStarted counts admitted users; SessionsFinished counts those
// whose last call reached a disposition.
func (e *Engine) SessionsStarted() uint64  { return e.sessionsStarted }
func (e *Engine) SessionsFinished() uint64 { return e.sessionsFinished }

// CallsIssued, CallsCompleted, CallsShed, CallsFailed sum the classes.
func (e *Engine) CallsIssued() uint64 {
	return e.sumClasses(func(a *classAccount) uint64 { return a.issued })
}
func (e *Engine) CallsCompleted() uint64 {
	return e.sumClasses(func(a *classAccount) uint64 { return a.completed })
}
func (e *Engine) CallsShed() uint64 {
	return e.sumClasses(func(a *classAccount) uint64 { return a.shed })
}
func (e *Engine) CallsFailed() uint64 {
	return e.sumClasses(func(a *classAccount) uint64 { return a.failed })
}

func (e *Engine) sumClasses(f func(*classAccount) uint64) uint64 {
	var t uint64
	for c := range e.class {
		t += f(&e.class[c])
	}
	return t
}

// FleetHist is the merged latency histogram of every completed
// (non-shed) call.
func (e *Engine) FleetHist() *stats.LogHist { return &e.fleetHist }

// ClassHist is class c's latency histogram.
func (e *Engine) ClassHist(c Class) *stats.LogHist { return &e.class[c].hist }

// OutstandingPeak is the balancer's peak in-flight count toward machine
// i.
func (e *Engine) OutstandingPeak(i int) int { return e.outstandingPeak[i] }

// InFlight is the balancer's total in-flight call count: issued calls
// that have not yet reached a disposition.
func (e *Engine) InFlight() int {
	t := 0
	for _, n := range e.fleet.Outstanding {
		t += n
	}
	return t
}

// Elapsed is the measurement window so far, in cycles.
func (e *Engine) Elapsed() sim.Cycle { return e.clock.Now() - e.started }

// elapsedSeconds converts the window to simulated seconds.
func (e *Engine) elapsedSeconds() float64 {
	return float64(e.Elapsed()) * sim.CycleNS / 1e9
}

// Goodput is completed (served, non-shed) calls per simulated second.
func (e *Engine) Goodput() float64 {
	if sec := e.elapsedSeconds(); sec > 0 {
		return float64(e.CallsCompleted()) / sec
	}
	return 0
}

// OfferedLoad is issued calls per simulated second.
func (e *Engine) OfferedLoad() float64 {
	if sec := e.elapsedSeconds(); sec > 0 {
		return float64(e.CallsIssued()) / sec
	}
	return 0
}

// ms renders a histogram percentile in milliseconds.
func ms(h *stats.LogHist, p float64) float64 {
	return rpc.CyclesToUS(h.Percentile(p)) / 1000
}

// Report renders the fleet traffic report: offered load vs goodput,
// shed and failed counts, fleet-wide and per-class latency percentiles,
// per-node saturation, and per-segment plus bridge utilization. The
// string is a pure function of simulation state — the determinism tests
// compare it byte-for-byte across worker counts.
func (e *Engine) Report() string {
	var b strings.Builder
	sec := e.elapsedSeconds()
	fmt.Fprintf(&b, "traffic %s\n", e.spec)
	fmt.Fprintf(&b, "elapsed %.3fs  sessions %d started / %d finished\n",
		sec, e.sessionsStarted, e.sessionsFinished)
	fmt.Fprintf(&b, "offered %.1f calls/s  goodput %.1f calls/s  shed %d  failed %d\n",
		e.OfferedLoad(), e.Goodput(), e.CallsShed(), e.CallsFailed())
	fmt.Fprintf(&b, "latency fleet p50 %.3fms p95 %.3fms p99 %.3fms mean %.3fms (n=%d)\n",
		ms(&e.fleetHist, 0.50), ms(&e.fleetHist, 0.95), ms(&e.fleetHist, 0.99),
		rpc.CyclesToUS(uint64(e.fleetHist.Mean()))/1000, e.fleetHist.Count())
	for _, c := range e.spec.MixClasses() {
		a := &e.class[c]
		fmt.Fprintf(&b, "class %-4s sessions %d calls %d ok %d shed %d failed %d p50 %.3fms p95 %.3fms p99 %.3fms\n",
			c, a.sessions, a.issued, a.completed, a.shed, a.failed,
			ms(&a.hist, 0.50), ms(&a.hist, 0.95), ms(&a.hist, 0.99))
	}
	elapsed := e.Elapsed()
	for _, i := range e.fleet.Backends {
		n := e.cl.Node(i)
		st := n.Stats()
		util := 0.0
		if elapsed > 0 {
			util = float64(st.ServiceCycles.Value()) / float64(elapsed)
		}
		fmt.Fprintf(&b, "node %2d seg %d: served %d shed %d util %.3f qpeak %d outpeak %d\n",
			i, e.fleet.SegOf[i], st.Served.Value(), st.CallsShed.Value(),
			util, n.QueuePeak(), e.outstandingPeak[i])
	}
	for k := 0; k < e.cl.NumSegments(); k++ {
		fmt.Fprintf(&b, "segment %d: util %.3f\n", k, e.cl.SegmentAt(k).Utilization())
	}
	if br := e.cl.Bridge(); br != nil {
		bs := br.Stats()
		fmt.Fprintf(&b, "bridge: forwarded %d unroutable %d\n",
			bs.Forwarded.Value(), bs.Unroutable.Value())
	}
	return b.String()
}
