package mod2

import (
	"firefly/internal/sim"
	"firefly/internal/topaz"
)

// MutatorConfig tunes a mutator thread.
type MutatorConfig struct {
	// Ops is the number of heap operations to perform.
	Ops int
	// CostPerOp is the computation between heap operations, in
	// instructions (default 300). The "in-line cost of reference counted
	// assignments" is charged separately per assignment.
	CostPerOp uint64
	// AssignCost is the RC bookkeeping cost per counted assignment
	// (default 12 instructions).
	AssignCost uint64
	// MaxRoots bounds the mutator's live root set (default 24).
	MaxRoots int
	// CycleEvery makes every n'th allocation pair a dropped cycle that
	// only the trace-and-sweep collector can reclaim (default 5).
	CycleEvery int
	// Seed drives the operation mix.
	Seed uint64
}

func (c MutatorConfig) withDefaults() MutatorConfig {
	if c.Ops == 0 {
		c.Ops = 200
	}
	if c.CostPerOp == 0 {
		c.CostPerOp = 300
	}
	if c.AssignCost == 0 {
		c.AssignCost = 12
	}
	if c.MaxRoots == 0 {
		c.MaxRoots = 24
	}
	if c.CycleEvery == 0 {
		c.CycleEvery = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// MutatorProgram returns a Topaz program performing a random mix of
// allocations, counted reference assignments, and root drops against the
// heap — a Modula-2+ application's storage behaviour. Every heap
// operation happens under the runtime lock; every counted assignment
// pays its in-line cost.
func MutatorProgram(h *Heap, cfg MutatorConfig) topaz.Program {
	cfg = cfg.withDefaults()
	rng := sim.NewRand(cfg.Seed)
	var held []int
	var assignsThisOp uint64

	mutate := func() {
		assignsThisOp = 0
		switch {
		case len(held) < 2 || (len(held) < cfg.MaxRoots && rng.Bool(0.45)):
			// Allocate; every few allocations, build a cyclic pair and
			// drop it — garbage only the tracer can reclaim.
			if int(h.stats.Allocs)%cfg.CycleEvery == cfg.CycleEvery-1 {
				a := h.Alloc()
				b := h.Alloc()
				if a >= 0 && b >= 0 {
					h.Link(a, b)
					h.Link(b, a)
					assignsThisOp += 2
					h.DropRoot(a)
					h.DropRoot(b)
				} else {
					if a >= 0 {
						h.DropRoot(a)
					}
					if b >= 0 {
						h.DropRoot(b)
					}
				}
				return
			}
			if s := h.Alloc(); s >= 0 {
				held = append(held, s)
			}
		case rng.Bool(0.5):
			// Counted assignment: link one held object to another.
			from := held[rng.Intn(len(held))]
			to := held[rng.Intn(len(held))]
			h.Link(from, to)
			assignsThisOp++
		case rng.Bool(0.5):
			// Remove an edge if the chosen object has one.
			from := h.Object(held[rng.Intn(len(held))])
			if targets := from.Refs(); len(targets) > 0 {
				h.Unlink(from.Slot(), targets[rng.Intn(len(targets))])
				assignsThisOp++
			}
		default:
			// Drop a root: the frame returned.
			i := rng.Intn(len(held))
			h.DropRoot(held[i])
			held = append(held[:i], held[i+1:]...)
		}
	}

	op := 0
	state := 0
	return topaz.ProgramFunc(func(*topaz.Thread) topaz.Action {
		switch state {
		case 0:
			if op >= cfg.Ops {
				state = 4
				return topaz.Call{Fn: func() {
					// Final frames return: drop every remaining root.
					for _, s := range held {
						h.DropRoot(s)
					}
					held = nil
				}}
			}
			op++
			state = 1
			return topaz.Lock{M: h.Mu}
		case 1:
			state = 2
			return topaz.Call{Fn: mutate}
		case 2:
			state = 3
			return topaz.Unlock{M: h.Mu}
		case 3:
			state = 0
			return topaz.Compute{Instructions: cfg.CostPerOp + assignsThisOp*cfg.AssignCost}
		default:
			return topaz.Exit{}
		}
	})
}

// CollectorConfig tunes the concurrent collector thread.
type CollectorConfig struct {
	// Batch is objects marked or swept per lock acquisition (default 16):
	// small batches keep the runtime lock available to the mutator.
	Batch int
	// BatchCost is the collector's computation per batch, in instructions
	// (default 200).
	BatchCost uint64
	// IdleSleep is the timer pause between GC cycles in bus cycles
	// (default 50_000 = 5 ms): the collector paces itself to the
	// application's garbage rate instead of spinning.
	IdleSleep uint64
	// Stop ends the collector when it reports true (checked between
	// batches). nil runs forever.
	Stop func() bool
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.BatchCost == 0 {
		c.BatchCost = 200
	}
	if c.IdleSleep == 0 {
		c.IdleSleep = 50_000
	}
	return c
}

// CollectorProgram returns the concurrent trace-and-sweep collector as a
// Topaz program: it repeatedly takes the runtime lock, advances the
// marking or sweeping by one batch, releases the lock, and computes —
// interleaving with the mutator exactly as the Modula-2+ collector did.
func CollectorProgram(h *Heap, cfg CollectorConfig) topaz.Program {
	cfg = cfg.withDefaults()
	state := 0
	marking := false
	idle := false
	return topaz.ProgramFunc(func(*topaz.Thread) topaz.Action {
		switch state {
		case 0:
			if cfg.Stop != nil && cfg.Stop() {
				return topaz.Exit{}
			}
			state = 1
			return topaz.Lock{M: h.Mu}
		case 1:
			state = 2
			return topaz.Call{Fn: func() {
				idle = false
				switch {
				case !h.Collecting():
					h.StartCycle()
					marking = true
				case marking:
					if h.MarkBatch(cfg.Batch) {
						marking = false
					}
				default:
					if h.SweepBatch(cfg.Batch) {
						idle = true // cycle finished: rest before the next
					}
				}
			}}
		case 2:
			state = 3
			return topaz.Unlock{M: h.Mu}
		default:
			state = 0
			if idle {
				return topaz.Sleep{Cycles: cfg.IdleSleep}
			}
			return topaz.Compute{Instructions: cfg.BatchCost}
		}
	})
}
