// Package mod2 models the Modula-2+ runtime storage system (§4.2):
// reference-counted garbage collection with a concurrent collector.
//
// "REFs are similar to POINTERs, except that the compiler and the runtime
// system keep track of the number of extant copies of a REF. When this
// number becomes zero, the referent is safely and automatically
// deallocated. The reference counts are kept in the objects themselves.
// Assignments to parameters and local variables on the stack are not
// reference counted... REFs on the stack are identified by a conservative
// scan. The collector runs concurrently with the application... A
// separate trace and sweep collector handles the reclamation of circular
// or self-referential structures."
//
// The heap reproduces that design: heap-to-heap reference assignments
// maintain counts; stack references are an uncounted root set scanned by
// the collector; a zero count queues an object on the zero-count table,
// freed once no root holds it; and an incremental trace-and-sweep
// collector with a Dijkstra-style write barrier reclaims cycles while the
// mutator keeps running — on another processor, which is the §6 claim the
// experiment measures ("the collector itself runs as a separate thread on
// another processor").
package mod2

import (
	"fmt"

	"firefly/internal/topaz"
)

// color is the tricolor marking state.
type color uint8

const (
	white color = iota // not yet reached this cycle
	grey               // reached, children pending
	black              // reached, children scanned
)

// edge is one outgoing reference: the target slot plus the target's
// allocation generation. A slot freed and reallocated during the same
// collection cycle gets a new generation, so stale edges held by
// not-yet-swept garbage can neither resurrect nor corrupt the new tenant.
type edge struct {
	slot int
	gen  uint64
}

// Object is one heap cell: a reference count, outgoing references, and
// the collector's mark state.
type Object struct {
	slot  int
	gen   uint64
	rc    int
	refs  []edge
	col   color
	alive bool
}

// Slot returns the object's heap index.
func (o *Object) Slot() int { return o.slot }

// Refs returns the object's outgoing reference targets (slot numbers).
func (o *Object) Refs() []int {
	out := make([]int, len(o.refs))
	for i, e := range o.refs {
		out[i] = e.slot
	}
	return out
}

// RC returns the current reference count (heap references only).
func (o *Object) RC() int { return o.rc }

// Stats counts heap activity.
type Stats struct {
	Allocs     uint64
	RCFrees    uint64 // freed by the reference counter
	CycleFrees uint64 // freed by the trace-and-sweep collector
	Assigns    uint64 // counted reference assignments
	GCCycles   uint64 // completed collector cycles
	Barriers   uint64 // write-barrier shades
}

// Heap is the shared Modula-2+ heap. All mutation happens under Mu — the
// runtime's allocation lock — from inside Topaz threads, so the
// collector's concurrency is real simulated concurrency.
type Heap struct {
	// Mu is the runtime lock; programs take it around heap operations.
	Mu *topaz.Mutex

	objects []*Object
	free    []int
	roots   map[int]int // slot -> root count (uncounted stack references)
	zct     map[int]bool

	// collector state
	collecting bool
	frontier   []int
	sweepPos   int

	stats Stats
}

// NewHeap returns a heap of the given capacity with its runtime lock
// allocated from the kernel.
func NewHeap(k *topaz.Kernel, slots int) *Heap {
	if slots <= 0 {
		panic("mod2: heap needs capacity")
	}
	h := &Heap{
		Mu:    k.NewMutex("mod2-heap"),
		roots: make(map[int]int),
		zct:   make(map[int]bool),
	}
	h.objects = make([]*Object, slots)
	for i := slots - 1; i >= 0; i-- {
		h.objects[i] = &Object{slot: i}
		h.free = append(h.free, i)
	}
	return h
}

// Stats returns a snapshot of the heap counters.
func (h *Heap) Stats() Stats { return h.stats }

// Live returns the number of allocated objects.
func (h *Heap) Live() int { return len(h.objects) - len(h.free) }

// Capacity returns the heap size in slots.
func (h *Heap) Capacity() int { return len(h.objects) }

// Object returns the object in a slot (alive or not).
func (h *Heap) Object(slot int) *Object { return h.objects[slot] }

// Alloc allocates an object and roots it (the allocating frame holds the
// only reference, on its stack). Returns -1 when the heap is full.
// Objects allocated during a collection cycle are born black so the
// in-progress sweep cannot reap them.
func (h *Heap) Alloc() int {
	if len(h.free) == 0 {
		return -1
	}
	slot := h.free[len(h.free)-1]
	h.free = h.free[:len(h.free)-1]
	o := h.objects[slot]
	o.alive = true
	o.gen++
	o.rc = 0
	o.refs = o.refs[:0]
	o.col = white
	if h.collecting {
		o.col = black
	}
	h.roots[slot]++
	h.stats.Allocs++
	return slot
}

// AddRoot records an additional stack reference to slot (passing a REF
// as a parameter). Stack references are not counted, but creating one
// during a collection shades the target: a white object newly held only
// by a stack frame must not be swept.
func (h *Heap) AddRoot(slot int) {
	h.mustBeAlive(slot, "AddRoot")
	h.roots[slot]++
	h.barrier(slot)
}

// DropRoot removes one stack reference. An unrooted object with a zero
// count is reclaimed immediately (the zero-count-table check the real
// runtime did with its conservative stack scan).
func (h *Heap) DropRoot(slot int) {
	h.mustBeAlive(slot, "DropRoot")
	if h.roots[slot] == 0 {
		panic(fmt.Sprintf("mod2: DropRoot on unrooted slot %d", slot))
	}
	h.roots[slot]--
	if h.roots[slot] == 0 {
		delete(h.roots, slot)
		if h.objects[slot].rc == 0 {
			h.reclaim(slot, &h.stats.RCFrees)
		}
	}
}

// Link adds a heap reference from -> to (a counted REF assignment into a
// heap object's field).
func (h *Heap) Link(from, to int) {
	h.mustBeAlive(from, "Link from")
	h.mustBeAlive(to, "Link to")
	h.objects[from].refs = append(h.objects[from].refs, edge{slot: to, gen: h.objects[to].gen})
	h.objects[to].rc++
	delete(h.zct, to)
	h.stats.Assigns++
	h.barrier(to)
}

// Unlink removes one heap reference from -> to. A count reaching zero
// with no root reclaims the object.
func (h *Heap) Unlink(from, to int) {
	h.mustBeAlive(from, "Unlink from")
	o := h.objects[from]
	found := -1
	for i, r := range o.refs {
		if r.slot == to && r.gen == h.objects[to].gen {
			found = i
			break
		}
	}
	if found < 0 {
		panic(fmt.Sprintf("mod2: Unlink of absent edge %d -> %d", from, to))
	}
	removed := o.refs[found]
	o.refs = append(o.refs[:found], o.refs[found+1:]...)
	h.stats.Assigns++
	h.decrementEdge(removed)
}

// decrementEdge drops the count behind a removed edge, ignoring stale
// edges whose target slot has been freed (and possibly reallocated) since
// the edge was created.
func (h *Heap) decrementEdge(e edge) {
	t := h.objects[e.slot]
	if !t.alive || t.gen != e.gen {
		return
	}
	h.decrement(e.slot)
}

func (h *Heap) decrement(slot int) {
	t := h.objects[slot]
	if !t.alive {
		return
	}
	t.rc--
	if t.rc < 0 {
		panic(fmt.Sprintf("mod2: negative reference count on slot %d", slot))
	}
	if t.rc == 0 {
		if h.roots[slot] > 0 {
			h.zct[slot] = true // zero count but stack-reachable: defer
			return
		}
		h.reclaim(slot, &h.stats.RCFrees)
	}
}

// reclaim frees an object and cascades the decrement to its children.
func (h *Heap) reclaim(slot int, counter *uint64) {
	o := h.objects[slot]
	if !o.alive {
		return
	}
	o.alive = false
	delete(h.zct, slot)
	delete(h.roots, slot)
	children := append([]edge(nil), o.refs...)
	o.refs = o.refs[:0]
	o.rc = 0
	h.free = append(h.free, slot)
	*counter++
	// Drop from the in-progress frontier lazily: markBatch skips dead
	// entries.
	for _, c := range children {
		h.decrementEdge(c)
	}
}

func (h *Heap) mustBeAlive(slot int, op string) {
	if slot < 0 || slot >= len(h.objects) || !h.objects[slot].alive {
		panic(fmt.Sprintf("mod2: %s on dead slot %d", op, slot))
	}
}

// barrier is the Dijkstra-style incremental-update write barrier: while a
// collection is in progress, the target of every stored reference is
// shaded so the concurrent marker cannot lose it.
func (h *Heap) barrier(slot int) {
	if !h.collecting {
		return
	}
	o := h.objects[slot]
	if o.col == white {
		o.col = grey
		h.frontier = append(h.frontier, slot)
		h.stats.Barriers++
	}
}

// --- collector ---

// StartCycle begins a trace: every live object is whitened (allocations
// during the cycle are born black) and the root set is shaded grey — the
// conservative stack scan.
func (h *Heap) StartCycle() {
	if h.collecting {
		panic("mod2: StartCycle during a cycle")
	}
	h.collecting = true
	h.frontier = h.frontier[:0]
	for _, o := range h.objects {
		if o.alive {
			o.col = white
		}
	}
	// Scan roots in slot order (the conservative stack scan) so marking
	// order — and therefore every statistic — is deterministic.
	for slot, o := range h.objects {
		if o.alive && h.roots[slot] > 0 && o.col == white {
			o.col = grey
			h.frontier = append(h.frontier, slot)
		}
	}
	h.sweepPos = 0
}

// Collecting reports whether a cycle is in progress.
func (h *Heap) Collecting() bool { return h.collecting }

// MarkBatch scans up to n grey objects, shading their children. It
// returns true when the frontier is empty (marking complete).
func (h *Heap) MarkBatch(n int) bool {
	for i := 0; i < n && len(h.frontier) > 0; i++ {
		slot := h.frontier[len(h.frontier)-1]
		h.frontier = h.frontier[:len(h.frontier)-1]
		o := h.objects[slot]
		if !o.alive || o.col == black {
			continue
		}
		o.col = black
		for _, c := range o.refs {
			t := h.objects[c.slot]
			if t.alive && t.gen == c.gen && t.col == white {
				t.col = grey
				h.frontier = append(h.frontier, c.slot)
			}
		}
	}
	return len(h.frontier) == 0
}

// SweepBatch frees up to n white objects (unreachable, including cycles
// the reference counts can never reclaim). It returns true when the sweep
// has covered the heap, ending the cycle.
func (h *Heap) SweepBatch(n int) bool {
	if len(h.frontier) != 0 {
		panic("mod2: sweep before marking finished")
	}
	freed := 0
	for h.sweepPos < len(h.objects) && freed < n {
		o := h.objects[h.sweepPos]
		h.sweepPos++
		// Rooted objects are never swept regardless of color: the
		// conservative stack scan always wins (defense in depth on top of
		// the AddRoot barrier).
		if o.alive && o.col == white && h.roots[o.slot] == 0 {
			h.sweepFree(o.slot)
			freed++
		}
	}
	if h.sweepPos >= len(h.objects) {
		h.collecting = false
		h.stats.GCCycles++
		return true
	}
	return false
}

// sweepFree frees a white object, dropping the counts behind its edges.
// Generation checks make this safe against slots freed and reallocated
// earlier in the same sweep; a decrement that zeroes another white
// object's count simply reclaims it through the reference counter a
// moment before the sweep would have.
func (h *Heap) sweepFree(slot int) {
	o := h.objects[slot]
	o.alive = false
	delete(h.zct, slot)
	children := append([]edge(nil), o.refs...)
	o.refs = o.refs[:0]
	o.rc = 0
	h.free = append(h.free, slot)
	h.stats.CycleFrees++
	for _, c := range children {
		h.decrementEdge(c)
	}
}

// CheckInvariants verifies heap consistency: reference counts equal the
// number of incoming heap edges, free slots are dead, no live object
// references a dead one. It returns an error describing the first
// violation. Call it only at quiescence (no collection in progress).
func (h *Heap) CheckInvariants() error {
	if h.collecting {
		return fmt.Errorf("mod2: CheckInvariants during collection")
	}
	counts := make([]int, len(h.objects))
	for _, o := range h.objects {
		if !o.alive {
			continue
		}
		for _, c := range o.refs {
			t := h.objects[c.slot]
			if !t.alive || t.gen != c.gen {
				return fmt.Errorf("mod2: live slot %d holds a stale edge to slot %d", o.slot, c.slot)
			}
			counts[c.slot]++
		}
	}
	for _, o := range h.objects {
		if o.alive && o.rc != counts[o.slot] {
			return fmt.Errorf("mod2: slot %d rc=%d but %d incoming edges", o.slot, o.rc, counts[o.slot])
		}
	}
	seen := make(map[int]bool)
	for _, s := range h.free {
		if h.objects[s].alive {
			return fmt.Errorf("mod2: free slot %d is alive", s)
		}
		if seen[s] {
			return fmt.Errorf("mod2: slot %d on free list twice", s)
		}
		seen[s] = true
	}
	return nil
}

// Reachable returns the set of slots reachable from the roots.
func (h *Heap) Reachable() map[int]bool {
	out := make(map[int]bool)
	var stack []int
	for s := range h.roots {
		if h.objects[s].alive {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[s] {
			continue
		}
		out[s] = true
		for _, c := range h.objects[s].refs {
			t := h.objects[c.slot]
			if t.alive && t.gen == c.gen && !out[c.slot] {
				stack = append(stack, c.slot)
			}
		}
	}
	return out
}
