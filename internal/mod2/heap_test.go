package mod2

import (
	"testing"
	"testing/quick"

	"firefly/internal/machine"
	"firefly/internal/sim"
	"firefly/internal/topaz"
)

func newHeap(t testing.TB, slots int) (*topaz.Kernel, *Heap) {
	t.Helper()
	m := machine.New(machine.MicroVAXConfig(2))
	k := topaz.NewKernel(m, topaz.Config{})
	return k, NewHeap(k, slots)
}

func TestAllocAndRCFree(t *testing.T) {
	_, h := newHeap(t, 8)
	a := h.Alloc()
	b := h.Alloc()
	if a < 0 || b < 0 || h.Live() != 2 {
		t.Fatalf("alloc failed: %d %d live=%d", a, b, h.Live())
	}
	h.Link(a, b)
	if h.Object(b).RC() != 1 {
		t.Fatalf("rc = %d", h.Object(b).RC())
	}
	// b's stack ref goes away: still held by a's field.
	h.DropRoot(b)
	if h.Live() != 2 {
		t.Fatal("counted object freed while referenced")
	}
	// a's root goes away: a freed, cascade frees b.
	h.DropRoot(a)
	if h.Live() != 0 {
		t.Fatalf("cascade failed: live=%d", h.Live())
	}
	if h.Stats().RCFrees != 2 {
		t.Fatalf("rc frees = %d", h.Stats().RCFrees)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCountTableDefersRootedObjects(t *testing.T) {
	// "REFs on the stack are identified by a conservative scan": a zero
	// count must not free an object a stack frame still holds.
	_, h := newHeap(t, 8)
	a := h.Alloc()
	b := h.Alloc()
	h.Link(a, b)
	h.Unlink(a, b) // b: rc 0, but still rooted
	if h.Live() != 2 {
		t.Fatal("rooted object freed on zero count")
	}
	h.DropRoot(b)
	if h.Live() != 1 {
		t.Fatal("unrooted zero-count object not freed")
	}
}

func TestHeapFull(t *testing.T) {
	_, h := newHeap(t, 2)
	h.Alloc()
	h.Alloc()
	if h.Alloc() != -1 {
		t.Fatal("full heap allocated")
	}
}

func TestCycleNeedsTracer(t *testing.T) {
	_, h := newHeap(t, 8)
	a := h.Alloc()
	b := h.Alloc()
	h.Link(a, b)
	h.Link(b, a)
	h.DropRoot(a)
	h.DropRoot(b)
	// The cycle keeps both counts at 1: RC cannot reclaim it.
	if h.Live() != 2 {
		t.Fatalf("cyclic garbage count wrong: %d", h.Live())
	}
	h.StartCycle()
	for !h.MarkBatch(64) {
	}
	for !h.SweepBatch(64) {
	}
	if h.Live() != 0 {
		t.Fatalf("tracer missed the cycle: live=%d", h.Live())
	}
	// The tracer breaks the cycle; sweeping the first member drops the
	// second's count to zero, so it may be reclaimed through the reference
	// counter an instant before the sweep reaches it. Either way both are
	// gone and at least one was the tracer's doing.
	st := h.Stats()
	if st.CycleFrees < 1 || st.CycleFrees+st.RCFrees != 2 {
		t.Fatalf("frees: cycle=%d rc=%d", st.CycleFrees, st.RCFrees)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerKeepsReachable(t *testing.T) {
	_, h := newHeap(t, 16)
	root := h.Alloc()
	child := h.Alloc()
	grand := h.Alloc()
	h.Link(root, child)
	h.Link(child, grand)
	h.DropRoot(child)
	h.DropRoot(grand)
	// Unreachable garbage beside them.
	junk := h.Alloc()
	h.DropRoot(junk) // rc-freed immediately
	cyc1, cyc2 := h.Alloc(), h.Alloc()
	h.Link(cyc1, cyc2)
	h.Link(cyc2, cyc1)
	h.DropRoot(cyc1)
	h.DropRoot(cyc2)

	h.StartCycle()
	for !h.MarkBatch(4) {
	}
	for !h.SweepBatch(4) {
	}
	if !h.Object(root).alive || !h.Object(child).alive || !h.Object(grand).alive {
		t.Fatal("tracer freed reachable objects")
	}
	if h.Live() != 3 {
		t.Fatalf("live = %d, want 3", h.Live())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierProtectsRelinkedObject(t *testing.T) {
	// The lost-object scenario: during marking, the only reference to a
	// white object moves behind the marker's back. The write barrier must
	// save it.
	_, h := newHeap(t, 16)
	b := h.Alloc() // slot 0: scanned second (frontier pops the highest)
	x := h.Alloc() // slot 1
	a := h.Alloc() // slot 2: scanned first, becomes black immediately
	h.Link(b, x)
	h.DropRoot(x)

	h.StartCycle()
	// Mark one object: the frontier stack pops slot 2 (a), which has no
	// children, so a is black while b (holding the only edge to x) is
	// still unscanned.
	h.MarkBatch(1)
	// Move x behind the marker's back: now referenced only from black a.
	h.Link(a, x)
	h.Unlink(b, x)
	for !h.MarkBatch(64) {
	}
	for !h.SweepBatch(64) {
	}
	if !h.Object(x).alive {
		t.Fatal("write barrier lost a live object")
	}
	if h.Stats().Barriers == 0 {
		t.Fatal("barrier never fired")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRootDuringCycleProtects(t *testing.T) {
	_, h := newHeap(t, 16)
	a := h.Alloc()
	x := h.Alloc()
	h.Link(a, x)
	h.DropRoot(x)
	h.StartCycle()
	// The mutator picks x up onto its stack and severs the heap edge
	// before the marker reaches it.
	h.AddRoot(x)
	h.Unlink(a, x)
	for !h.MarkBatch(64) {
	}
	for !h.SweepBatch(64) {
	}
	if !h.Object(x).alive {
		t.Fatal("rooted object swept")
	}
}

func TestAllocDuringCycleBornBlack(t *testing.T) {
	_, h := newHeap(t, 16)
	a := h.Alloc()
	_ = a
	h.StartCycle()
	fresh := h.Alloc()
	for !h.MarkBatch(64) {
	}
	for !h.SweepBatch(64) {
	}
	if !h.Object(fresh).alive {
		t.Fatal("object allocated during collection was swept")
	}
}

func TestHeapPanics(t *testing.T) {
	_, h := newHeap(t, 4)
	a := h.Alloc()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("DropRoot dead", func() { h.DropRoot(3) })
	mustPanic("Link dead", func() { h.Link(a, 3) })
	mustPanic("Unlink absent", func() { h.Unlink(a, a) })
	mustPanic("AddRoot range", func() { h.AddRoot(-1) })
	mustPanic("double StartCycle", func() { h.StartCycle(); h.StartCycle() })
}

// TestStaleEdgeAfterSlotReuse is the regression test for the generation
// check: during a sweep, a white object's slot is freed and immediately
// reallocated; a second white object still holding an edge to the old
// tenant is swept afterwards. Its stale edge must not decrement (or
// resurrect) the new tenant.
func TestStaleEdgeAfterSlotReuse(t *testing.T) {
	_, h := newHeap(t, 8)
	tgt := h.Alloc() // slot 0: swept first
	x := h.Alloc()   // slot 1: holds an edge to tgt, swept second
	y := h.Alloc()   // slot 2: cycle partner keeping x unreclaimable by RC
	h.Link(x, tgt)
	h.Link(y, tgt)
	h.Link(x, y)
	h.Link(y, x)
	h.DropRoot(tgt)
	h.DropRoot(x)
	h.DropRoot(y) // everything garbage; tgt.rc=2 so only the sweep frees it

	h.StartCycle()
	for !h.MarkBatch(64) {
	}
	// Sweep exactly one slot: tgt (slot 0) is freed.
	if h.SweepBatch(1) {
		t.Fatal("sweep finished too early")
	}
	if h.Object(tgt).alive {
		t.Fatal("precondition: tgt not swept first")
	}
	// The mutator reallocates the slot mid-sweep.
	n := h.Alloc()
	if n != tgt {
		t.Fatalf("precondition: slot not reused (got %d, want %d)", n, tgt)
	}
	// Sweeping x and y must skip their stale edges to the reused slot.
	for !h.SweepBatch(64) {
	}
	if !h.Object(n).alive {
		t.Fatal("new tenant was killed by a stale edge")
	}
	if h.Object(n).RC() != 0 {
		t.Fatalf("new tenant rc = %d, want 0", h.Object(n).RC())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Live() != 1 {
		t.Fatalf("live = %d, want only the new tenant", h.Live())
	}
}

// TestRandomMutationInvariants drives random heap operations (no
// collector) and checks invariants throughout.
func TestRandomMutationInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		_, h := newHeap(t, 32)
		rng := sim.NewRand(seed)
		var held []int
		for op := 0; op < 400; op++ {
			switch {
			case len(held) == 0 || (len(held) < 12 && rng.Bool(0.4)):
				if s := h.Alloc(); s >= 0 {
					held = append(held, s)
				}
			case rng.Bool(0.4):
				h.Link(held[rng.Intn(len(held))], held[rng.Intn(len(held))])
			case rng.Bool(0.4):
				o := h.Object(held[rng.Intn(len(held))])
				if targets := o.Refs(); len(targets) > 0 {
					h.Unlink(o.Slot(), targets[rng.Intn(len(targets))])
				}
			default:
				i := rng.Intn(len(held))
				h.DropRoot(held[i])
				held = append(held[:i], held[i+1:]...)
			}
			if op%50 == 0 {
				if err := h.CheckInvariants(); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		// A full GC afterward reclaims everything unreachable.
		h.StartCycle()
		for !h.MarkBatch(64) {
		}
		for !h.SweepBatch(64) {
		}
		if err := h.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		return h.Live() == len(h.Reachable())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMutatorCollector runs the mutator and collector as Topaz
// threads on a 2-CPU machine and verifies safety (no reachable object
// freed) and liveness (cyclic garbage eventually reclaimed).
func TestConcurrentMutatorCollector(t *testing.T) {
	m := machine.New(machine.MicroVAXConfig(2))
	k := topaz.NewKernel(m, topaz.Config{Quantum: 1200})
	h := NewHeap(k, 256)
	mutatorDone := false
	k.Fork(MutatorProgram(h, MutatorConfig{Ops: 300, Seed: 9}), topaz.ThreadSpec{Name: "mutator"}, nil)
	// Wrap: mark mutator completion via a joiner thread is overkill; poll
	// thread states instead.
	collectorStopped := false
	k.Fork(CollectorProgram(h, CollectorConfig{Stop: func() bool {
		return mutatorDone && !h.Collecting()
	}}), topaz.ThreadSpec{Name: "collector"}, nil)

	for i := 0; i < 4000 && !collectorStopped; i++ {
		m.Run(50_000)
		mutDone := true
		for _, th := range k.Threads() {
			if th.Name() == "mutator" && th.State() != topaz.Done {
				mutDone = false
			}
		}
		mutatorDone = mutDone
		if k.Done() {
			collectorStopped = true
		}
	}
	if !collectorStopped {
		t.Fatalf("mutator/collector did not finish; stuck=%v", k.Stuck())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All roots were dropped at mutator exit; after the collector's final
	// cycles only reachable (= zero) objects remain... cyclic garbage
	// created after the last full cycle may survive; run one final cycle.
	h.StartCycle()
	for !h.MarkBatch(256) {
	}
	for !h.SweepBatch(256) {
	}
	if h.Live() != 0 {
		t.Fatalf("garbage survived: %d live", h.Live())
	}
	st := h.Stats()
	if st.CycleFrees == 0 {
		t.Fatal("collector reclaimed no cycles despite cyclic garbage")
	}
	if st.GCCycles == 0 {
		t.Fatal("no GC cycles completed")
	}
}
