// Package firefly is a simulator-based reproduction of the Firefly
// multiprocessor workstation (Thacker, Stewart, Satterthwaite, ASPLOS II,
// 1987): a small shared-memory multiprocessor whose snoopy caches run the
// Firefly conditional write-through coherence protocol over a simple
// 10 MB/s bus.
//
// The package is a facade over the simulator's subsystems:
//
//   - the MBus (internal/mbus): four-cycle MRead/MWrite operations with a
//     wired-OR MShared line (the paper's Figure 4);
//   - the coherent cache (internal/core): the paper's primary
//     contribution, a direct-mapped snoopy cache with Dirty/Shared tags
//     and conditional write-through (Figure 3), plus baseline protocols
//     (internal/coherence): Dragon, Berkeley, MESI, write-through
//     invalidate;
//   - processor models (internal/cpu): MicroVAX 78032 and CVAX 78034
//     timing behaviour driven by reference streams (internal/trace);
//   - the analytic performance model of §5.2 (internal/model),
//     regenerating the paper's Table 1;
//   - the Topaz operating system layer (internal/topaz): threads,
//     mutexes, condition variables, and the migration-avoiding scheduler;
//   - the I/O system (internal/qbus): QBus mapping registers, DMA, the
//     RQDX3 disk and DEQNA Ethernet controllers;
//   - the display controller (internal/display): a real BitBlt engine and
//     the MDC's work-queue/microengine timing;
//   - RPC (internal/rpc) and the paper's workloads (internal/workload).
//
// Typical use:
//
//	m := firefly.NewMicroVAX(5)          // a standard 5-CPU Firefly
//	m.AttachSyntheticLoad(firefly.SyntheticLoad{
//		MissRate:           0.2,
//		ShareFraction:      0.1,
//		SharedReadFraction: 0.05,
//	})
//	m.RunSeconds(0.01)
//	fmt.Println(m.Report())
//
// or with the operating system layer:
//
//	m := firefly.NewMicroVAX(4)
//	k := firefly.Boot(m, firefly.KernelConfig{AvoidMigration: true})
//	k.Fork(topaz.Seq(topaz.Compute{Instructions: 100_000}), topaz.ThreadSpec{}, nil)
//	k.RunUntilDone(100_000_000)
package firefly

import (
	"io"

	"firefly/internal/coherence"
	"firefly/internal/core"
	"firefly/internal/cpu"
	"firefly/internal/display"
	"firefly/internal/machine"
	"firefly/internal/model"
	"firefly/internal/obs"
	"firefly/internal/stats"
	"firefly/internal/topaz"
	"firefly/internal/trace"
)

// Machine is an assembled Firefly system: processors, caches, MBus,
// storage, and attached I/O engines.
type Machine = machine.Machine

// MachineConfig selects processors, cache geometry, coherence protocol,
// memory size, and bus arbitration.
type MachineConfig = machine.Config

// Report is a machine measurement summary in the categories of the
// paper's Table 2.
type Report = machine.Report

// Kernel is the Topaz operating-system layer: threads, synchronization,
// and the scheduler.
type Kernel = topaz.Kernel

// KernelConfig tunes the Topaz kernel (quantum, migration policy, context
// switch cost).
type KernelConfig = topaz.Config

// Thread is a Topaz thread of control.
type Thread = topaz.Thread

// ThreadSpec configures a new thread's name and memory behaviour.
type ThreadSpec = topaz.ThreadSpec

// Protocol is a snoopy cache coherence protocol.
type Protocol = core.Protocol

// ModelParams are the analytic model's inputs (§5.2).
type ModelParams = model.Params

// MDC is the monochrome display controller.
type MDC = display.MDC

// NewMachine builds a Firefly from an explicit configuration.
func NewMachine(cfg MachineConfig) *Machine { return machine.New(cfg) }

// NewMicroVAX returns the original Firefly: n MicroVAX 78032 processors,
// 16 KB caches, up to 16 MB of storage. The standard configuration had
// five processors.
func NewMicroVAX(n int) *Machine { return machine.New(machine.MicroVAXConfig(n)) }

// NewCVAX returns the second-version Firefly: n CVAX 78034 processors,
// 64 KB caches, up to 128 MB of storage.
func NewCVAX(n int) *Machine { return machine.New(machine.CVAXConfig(n)) }

// Boot installs a Topaz kernel on the machine: every processor gets the
// scheduler and an idle loop; fork threads with Kernel.Fork.
func Boot(m *Machine, cfg KernelConfig) *Kernel { return topaz.NewKernel(m, cfg) }

// FireflyProtocol returns the paper's conditional write-through protocol.
func FireflyProtocol() Protocol { return core.Firefly{} }

// Protocols returns the full protocol suite (Firefly first, then the
// Archibald & Baer baselines: Dragon, Berkeley, MESI, write-through
// invalidate).
func Protocols() []Protocol { return coherence.All() }

// ProtocolByName returns a protocol by its Name. The second result
// reports whether the name is known.
func ProtocolByName(name string) (Protocol, bool) { return coherence.ByName(name) }

// ProtocolNames returns the known protocol names in suite order.
func ProtocolNames() []string { return coherence.Names() }

// MicroVAXModel returns the analytic model with the paper's MicroVAX
// parameters; MicroVAXModel().Sweep(model.Table1NPs) regenerates Table 1.
func MicroVAXModel() ModelParams { return model.MicroVAX() }

// CVAXModel returns the analytic model with CVAX parameters.
func CVAXModel() ModelParams { return model.CVAX() }

// Variants returns the processor implementations.
func Variants() []cpu.Variant {
	return []cpu.Variant{cpu.MicroVAX78032(), cpu.CVAX78034()}
}

// Observability. Machine.Trace attaches sinks to a machine's event
// stream; these aliases and constructors expose the internal/obs types
// through the facade.

// SyntheticLoad names the synthetic-workload parameters for
// Machine.AttachSyntheticLoad.
type SyntheticLoad = trace.SyntheticLoad

// TraceEvent is one observability event (a bus grant, a cache state
// transition, a scheduler dispatch, a DMA word, ...).
type TraceEvent = obs.Event

// TraceObserver consumes trace events; implementations include the ring
// buffer and the JSONL and Chrome exporters.
type TraceObserver = obs.Observer

// Tracer fans events out to attached observers; install one with
// MachineConfig.Tracer or Machine.Trace.
type Tracer = obs.Tracer

// TraceRing is a bounded in-memory event buffer that overwrites its
// oldest events when full.
type TraceRing = obs.Ring

// NewTracer returns a tracer with the given sinks attached.
func NewTracer(sinks ...TraceObserver) *Tracer { return obs.NewTracer(sinks...) }

// NewTraceRing returns a ring buffer holding the last capacity events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewJSONLExporter returns a sink writing one deterministic JSON object
// per event. Close it to flush.
func NewJSONLExporter(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// NewChromeExporter returns a sink writing the Chrome trace_event
// format (load in chrome://tracing or Perfetto), one track per
// processor plus one for the bus. Close it to finish the JSON array.
func NewChromeExporter(w io.Writer) *obs.Chrome { return obs.NewChrome(w) }

// StatsRegistry is the named-counter registry behind Machine.Report.
type StatsRegistry = stats.Registry
