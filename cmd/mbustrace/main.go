// Command mbustrace prints the cycle-by-cycle MBus schedule for a short
// scripted run — the paper's Figure 4 in text form: arbitration and
// address in cycle 1, write data and tag probes in cycle 2, MShared in
// cycle 3, data in cycle 4.
package main

import (
	"fmt"

	"firefly/internal/experiments"
)

func main() {
	fmt.Println(experiments.Figure4(experiments.Quick))
}
