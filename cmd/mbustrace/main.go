// Command mbustrace prints the cycle-by-cycle MBus schedule for a short
// scripted run — the paper's Figure 4 in text form: arbitration and
// address in cycle 1, write data and tag probes in cycle 2, MShared in
// cycle 3, data in cycle 4. The table is rendered from the machine's
// observability event stream; -raw dumps the underlying events instead.
package main

import (
	"flag"
	"fmt"

	"firefly/internal/core"
	"firefly/internal/experiments"
	"firefly/internal/machine"
	"firefly/internal/mbus"
	"firefly/internal/obs"
)

func main() {
	raw := flag.Bool("raw", false, "dump raw trace events instead of the timing table")
	flag.Parse()

	m := machine.New(machine.MicroVAXConfig(2))
	for _, p := range m.Processors() {
		p.Halt()
	}
	drive := func(i int, acc core.Access) {
		c := m.Cache(i)
		if c.Submit(acc) {
			return
		}
		for c.Busy() {
			m.Run(1)
		}
	}
	// Seed: cache 1 holds the line Dirty, so the traced MRead is answered
	// by a cache with memory inhibited — the interesting Figure 4 case.
	drive(1, core.Access{Write: true, Addr: 0x200, Data: 1})
	drive(1, core.Access{Write: true, Addr: 0x200, Data: 42})

	ring := obs.NewRing(256)
	m.Trace(ring)
	drive(0, core.Access{Addr: 0x200})                       // MRead, MShared, cache-supplied
	drive(0, core.Access{Write: true, Addr: 0x200, Data: 7}) // conditional write-through

	if *raw {
		for _, e := range ring.Events() {
			fmt.Printf("cycle %-6d %-22s unit %-2d addr %-10s a=%d b=%d %s\n",
				e.Cycle, e.Kind, e.Unit, mbus.Addr(e.Addr), e.A, e.B, e.Label)
		}
		return
	}
	fmt.Println("MBus timing (100 ns cycles; one operation = 4 cycles):")
	fmt.Println()
	fmt.Print(experiments.RenderBusTiming(ring.Events()))
}
