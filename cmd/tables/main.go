// Command tables regenerates every table and figure of the paper's
// evaluation, plus the repository's ablation experiments.
//
// Usage:
//
//	tables                  # run everything at the quick budget
//	tables -experiment table2 -full
//	tables -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"firefly/internal/experiments"
)

// splitAxis turns a comma-separated flag value into an axis restriction;
// empty means unrestricted.
func splitAxis(v string) []string {
	if v == "" {
		return nil
	}
	return strings.Split(v, ",")
}

func main() {
	experiment := flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
	full := flag.Bool("full", false, "use report-quality run lengths")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = one per CPU; output is identical for any value)")
	arb := flag.String("arb", "", "restrict policysweep's arbitration axis (comma-separated: fixed, rr, fcfs)")
	sched := flag.String("sched", "", "restrict policysweep's dispatch axis (comma-separated: averse, oldest, steal)")
	segments := flag.Int("segments", 1, "Ethernet segments for the cluster experiment (2 puts client and server on bridged wires)")
	flag.Parse()

	experiments.SetWorkers(*workers)
	experiments.SetClusterSegments(*segments)
	if err := experiments.SetPolicyAxes(splitAxis(*arb), splitAxis(*sched)); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("  %-12s %s\n", r.ID, r.Note)
		}
		return
	}

	budget := experiments.Quick
	if *full {
		budget = experiments.Full
	}

	run := func(r experiments.Runner) {
		start := time.Now()
		out := r.Run(budget)
		fmt.Println(out)
		fmt.Printf("(%s in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
	}

	if *experiment == "all" {
		for _, r := range experiments.All() {
			run(r)
		}
		return
	}
	r := experiments.ByID(*experiment)
	if r == nil {
		fmt.Fprintf(os.Stderr, "tables: unknown experiment %q (try -list)\n", *experiment)
		os.Exit(2)
	}
	run(*r)
}
