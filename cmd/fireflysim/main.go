// Command fireflysim runs one Firefly configuration under a chosen
// workload and prints the measurement report.
//
// Examples:
//
//	fireflysim -cpus 5 -seconds 0.05
//	fireflysim -cpus 7 -protocol mesi -miss 0.15 -share 0.3
//	fireflysim -cpus 4 -variant cvax -workload exerciser
//	fireflysim -cpus 4 -workload make
//	fireflysim -cpus 2 -seconds 0.001 -trace out.json -trace-format chrome
//	fireflysim -cpus 4 -arb rr -sched steal -workload exerciser
//	fireflysim -experiment table1sim -workers 4
//	fireflysim -experiment policysweep -arb fixed,fcfs -sched oldest
//	fireflysim -cpus 5 -check -seconds 0.005
//	fireflysim -cpus 4 -faults "all=1e-4" -check -seconds 0.005
//	fireflysim -replay repro.replay
//	fireflysim -cluster 2 -callers 3 -seconds 0.5
//	fireflysim -cluster 3 -faults "drop=0.02" -seconds 0.2
//	fireflysim -cluster 64 -segments 8 -workers 4 -callers 1 -seconds 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"firefly"
	"firefly/internal/check"
	"firefly/internal/cluster"
	"firefly/internal/experiments"
	"firefly/internal/fault"
	"firefly/internal/machine"
	"firefly/internal/mbus"
	"firefly/internal/obs"
	"firefly/internal/rpc"
	"firefly/internal/topaz"
	"firefly/internal/trace"
	"firefly/internal/traffic"
	"firefly/internal/verify"
	"firefly/internal/workload"
)

// runVerify exhaustively checks one protocol (or the whole shipped suite)
// in the abstract counter model, printing per-space results and exiting 1
// when a counterexample is found. When out is non-empty the smallest
// counterexample is concretized into a replay file runnable with -replay.
func runVerify(name, out string) {
	names := []string{name}
	if name == "all" {
		names = verify.ShippedProtocolNames()
	}
	unsafe := false
	for _, n := range names {
		r, err := verify.ForProtocol(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(2)
		}
		for _, sp := range append(append([]*verify.Space{}, r.Exact...), r.Symbolic) {
			kLabel := fmt.Sprintf("k=%d", sp.K)
			if sp.K == 0 {
				kLabel = "k=ω"
			}
			verdict := "safe"
			if sp.Counterexample != nil {
				verdict = "UNSAFE (" + sp.Counterexample.Kind + ")"
			}
			fmt.Printf("verify %s %s: %d states, %d transitions, diameter %d: %s\n",
				n, kLabel, sp.States, sp.Transitions, sp.Diameter, verdict)
		}
		ce := r.Counterexample()
		if ce == nil {
			fmt.Printf("verify %s: SAFE — all invariants hold in every reachable configuration\n", n)
			continue
		}
		unsafe = true
		fmt.Printf("verify %s: %s\n", n, ce)
		if out != "" {
			cfg, sched, err := verify.Concretize(r.Model, ce)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fireflysim: concretize: %v\n", err)
				os.Exit(2)
			}
			if err := check.SaveReplay(out, cfg, sched); err != nil {
				fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("verify %s: counterexample schedule written to %s (run with -replay)\n", n, out)
		}
	}
	if unsafe {
		os.Exit(1)
	}
}

// runCluster drives N Fireflies on shared Ethernet segments: node 0
// runs the RPC server, every other node aims caller threads at it, and
// the run reports per-node call counts plus wire-level statistics. With
// -segments > 1 the machines split across bridged wires, and -workers
// shards the member machines across goroutines inside the engine's
// wire-bounded windows (output is byte-identical for any value).
func runCluster(n, segments, workers, callers int, seconds float64, seed uint64, faults string) {
	if n < 2 {
		fmt.Fprintf(os.Stderr, "fireflysim: -cluster %d: a cluster needs at least 2 machines\n", n)
		os.Exit(2)
	}
	if segments < 1 || segments > n {
		fmt.Fprintf(os.Stderr, "fireflysim: -segments %d: need between 1 and %d segments\n", segments, n)
		os.Exit(2)
	}
	if callers < 1 {
		fmt.Fprintf(os.Stderr, "fireflysim: -callers %d: need at least 1 caller thread\n", callers)
		os.Exit(2)
	}
	if workers < 1 {
		workers = cluster.DefaultWorkers()
	}
	cfg := cluster.Config{Machines: n, Segments: segments, Workers: workers, Seed: seed}
	if faults != "" {
		fcfg, err := fault.ParseSpec(faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = &fcfg
	}
	cl := cluster.New(cfg)
	cl.Node(0).StartServer()
	for i := 1; i < n; i++ {
		cl.Node(i).StartCallers(callers, 0, 0)
	}
	cl.RunSeconds(seconds)

	var payload uint64
	fmt.Printf("cluster: %d machines on %d segment(s), %d caller threads each, %d workers, %.3f simulated seconds\n",
		n, segments, callers, workers, seconds)
	for i := 1; i < n; i++ {
		st := cl.Node(i).Stats()
		payload += st.BytesMoved.Value()
		fmt.Printf("node %d: %d calls completed (%d issued, %d retransmits, %d failed), mean latency %.0f µs\n",
			i, st.CallsCompleted.Value(), st.CallsIssued.Value(),
			st.Retransmits.Value(), st.CallsFailed.Value(), cl.Node(i).MeanLatencyUS())
	}
	srv := cl.Node(0).Stats()
	fmt.Printf("node 0 (server): %d calls served, %d duplicates absorbed\n",
		srv.Served.Value(), srv.DupCalls.Value())
	var clients []*rpc.Node
	for i := 1; i < n; i++ {
		clients = append(clients, cl.Node(i))
	}
	if h := rpc.MergeLatencies(clients...); h.Count() > 0 {
		fmt.Printf("fleet latency: p50 %.0f µs, p95 %.0f µs, p99 %.0f µs over %d calls\n",
			rpc.CyclesToUS(h.Percentile(0.50)), rpc.CyclesToUS(h.Percentile(0.95)),
			rpc.CyclesToUS(h.Percentile(0.99)), h.Count())
	}
	fmt.Printf("payload: %.2f Mbit/s across the fleet\n", float64(payload)*8/seconds/1e6)
	for k := 0; k < cl.NumSegments(); k++ {
		seg := cl.SegmentAt(k).Stats()
		fmt.Printf("wire %d: utilization %.2f, %d frames (%d collisions, %d deferrals, %d dropped)\n",
			k, cl.SegmentAt(k).Utilization(),
			seg.Frames.Value(), seg.Collisions.Value(), seg.Deferrals.Value(),
			seg.Dropped.Value())
	}
	if br := cl.Bridge(); br != nil {
		fmt.Printf("bridge: %d frames forwarded, %d unroutable\n",
			br.Stats().Forwarded.Value(), br.Stats().Unroutable.Value())
	}
	if plan := cl.NetFaults(); plan != nil {
		fmt.Printf("faults: %d frames dropped by the plan\n", plan.Stats().NetDrops.Value())
	}
}

// runTraffic drives the fleet traffic engine: member 0 is the
// load-balancing front end terminating an open-loop user population and
// every other member serves. The topology defaults to a 16-machine,
// 4-segment bridged fleet when -cluster/-segments are left unset; the
// report is byte-identical at any -workers value.
func runTraffic(spec string, n, segments, workers int, seconds float64, seed uint64, faults string) {
	ts, err := traffic.ParseSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
		os.Exit(2)
	}
	if n == 0 {
		n = 16
		if segments == 1 {
			segments = 4
		}
	}
	if n < 2 {
		fmt.Fprintf(os.Stderr, "fireflysim: -cluster %d: traffic needs a balancer and at least one server\n", n)
		os.Exit(2)
	}
	if segments < 1 || segments > n {
		fmt.Fprintf(os.Stderr, "fireflysim: -segments %d: need between 1 and %d segments\n", segments, n)
		os.Exit(2)
	}
	if workers < 1 {
		workers = cluster.DefaultWorkers()
	}
	cfg := cluster.Config{
		Machines:  n,
		Segments:  segments,
		Workers:   workers,
		Seed:      seed,
		NodePatch: ts.NodePatch(),
	}
	// Queueing delay near the admission bound must stay inside the
	// retransmit timer, or the tail measures duplicate suppression
	// instead of the queue.
	cfg.Node.RetransmitCycles = 2_000_000
	if faults != "" {
		fcfg, err := fault.ParseSpec(faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = &fcfg
	}
	cl := cluster.New(cfg)
	eng := traffic.Attach(cl, ts)
	cl.RunSeconds(seconds)
	fmt.Printf("traffic: %d machines on %d segment(s), %d workers, %.3f simulated seconds\n",
		n, segments, workers, seconds)
	pred := ts.Predict(rpc.Config{}, n-1)
	fmt.Printf("analytic: %.0f calls/s offered, per-node rho %.2f, knee %.0f sessions/s\n",
		pred.CallsPerSecond, pred.Rho, pred.KneeSessionsPerSecond)
	fmt.Print(eng.Report())
}

func main() {
	cpus := flag.Int("cpus", 5, "number of processors (hardware shipped 1-7)")
	variant := flag.String("variant", "microvax", "processor variant: microvax or cvax")
	protocol := flag.String("protocol", "firefly", "coherence protocol: firefly, dragon, berkeley, mesi, write-through-invalidate")
	seconds := flag.Float64("seconds", 0.02, "simulated seconds to run")
	warmup := flag.Float64("warmup", 0.002, "simulated seconds of warmup excluded from measurement")
	miss := flag.Float64("miss", 0.2, "synthetic workload miss rate M")
	share := flag.Float64("share", 0.1, "synthetic workload sharing fraction S")
	wl := flag.String("workload", "synthetic", "workload: synthetic, exerciser, make, pipeline, compiler")
	lineWords := flag.Int("linewords", 1, "cache line size in longwords (hardware: 1)")
	cacheLines := flag.Int("cachelines", 0, "cache lines (0 = variant default)")
	seed := flag.Uint64("seed", 1, "random seed")
	tracePath := flag.String("trace", "", "write an event trace to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace format: jsonl or chrome")
	arb := flag.String("arb", "fixed", "MBus arbitration policy: fixed, rr, fcfs (with -experiment policysweep: comma-separated axis restriction)")
	sched := flag.String("sched", "", "kernel dispatch policy: averse, oldest, steal (default: workload's own; with -experiment policysweep: comma-separated axis restriction)")
	experiment := flag.String("experiment", "", "run a named sweep experiment instead of a single machine (see cmd/tables -list)")
	workers := flag.Int("workers", 0, "sweep worker goroutines for -experiment (0 = one per CPU; output is identical for any value)")
	checkFlag := flag.Bool("check", false, "run the coherence checker alongside the workload (oracle + invariant walks)")
	faults := flag.String("faults", "", `fault-injection spec, e.g. "bus=1e-4,mem=1e-4" or "all=1e-4" (keys: bus, timeout, mem, memunc, nxm, stall, tag, all, retries, backoff, stallcycles, hold, start, end, seed, addrmin, addrmax)`)
	replay := flag.String("replay", "", "re-execute a coherence-checker replay file and report the outcome")
	verifyProto := flag.String("verify", "", `exhaustively verify a protocol's coherence invariants in the abstract counter model ("all" = the whole shipped suite); exits 1 on a counterexample`)
	verifyOut := flag.String("verify-out", "", "with -verify: write the concretized counterexample as a replay file (runnable with -replay)")
	clusterN := flag.Int("cluster", 0, "run an N-machine cluster on a shared Ethernet instead of one machine (node 0 serves, the rest call)")
	callers := flag.Int("callers", 3, "caller threads per client machine in -cluster mode")
	segments := flag.Int("segments", 1, "Ethernet segments in -cluster mode, joined store-and-forward by a bridge (machines split in contiguous blocks)")
	travel := flag.Uint64("travel", 0, "time-travel: after the run, restore the post-warmup snapshot, replay to this cycle, and print the report there (synthetic workload only; 0 = off)")
	trafficSpec := flag.String("traffic", "", `fleet traffic spec, e.g. "rate=2000,mix=file:6/make:3/mdc:1,lb=least,queue=32,seed=5": member 0 load-balances an open-loop user population over the rest (defaults to a 16-machine 4-segment fleet unless -cluster/-segments are set)`)
	flag.Parse()

	if *verifyProto != "" {
		runVerify(*verifyProto, *verifyOut)
		return
	}

	if *replay != "" {
		res, err := check.RunReplayFile(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("replay: %d checked ops, %d walks, %d cycles\n", res.Checked, res.Walks, res.Cycles)
		if res.Ok() {
			fmt.Println("replay: coherent (no violations)")
			return
		}
		for _, v := range res.Violations {
			fmt.Printf("replay: VIOLATION %v\n", v)
		}
		os.Exit(1)
	}

	if *trafficSpec != "" {
		runTraffic(*trafficSpec, *clusterN, *segments, *workers, *seconds, *seed, *faults)
		return
	}

	if *clusterN > 0 {
		runCluster(*clusterN, *segments, *workers, *callers, *seconds, *seed, *faults)
		return
	}

	if *experiment != "" {
		experiments.SetWorkers(*workers)
		experiments.SetClusterSegments(*segments)
		// Only a flag the user actually set restricts a sweep axis; the
		// -arb default would otherwise silently collapse policysweep.
		flagSet := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })
		var arbAxis, schedAxis []string
		if flagSet["arb"] {
			arbAxis = strings.Split(*arb, ",")
		}
		if flagSet["sched"] {
			schedAxis = strings.Split(*sched, ",")
		}
		if err := experiments.SetPolicyAxes(arbAxis, schedAxis); err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(2)
		}
		r := experiments.ByID(*experiment)
		if r == nil {
			fmt.Fprintf(os.Stderr, "fireflysim: unknown experiment %q (see cmd/tables -list)\n", *experiment)
			os.Exit(2)
		}
		fmt.Println(r.Run(experiments.Quick))
		return
	}

	var cfg machine.Config
	switch *variant {
	case "microvax":
		cfg = machine.MicroVAXConfig(*cpus)
	case "cvax":
		cfg = machine.CVAXConfig(*cpus)
	default:
		fmt.Fprintf(os.Stderr, "fireflysim: unknown variant %q\n", *variant)
		os.Exit(2)
	}
	proto, ok := firefly.ProtocolByName(*protocol)
	if !ok {
		fmt.Fprintf(os.Stderr, "fireflysim: unknown protocol %q (known: %s)\n",
			*protocol, strings.Join(firefly.ProtocolNames(), ", "))
		os.Exit(2)
	}
	cfg.Protocol = proto
	arbiter, ok := mbus.NewArbiterByName(*arb)
	if !ok {
		fmt.Fprintf(os.Stderr, "fireflysim: unknown arbitration policy %q (known: %s)\n",
			*arb, strings.Join(mbus.ArbiterNames(), ", "))
		os.Exit(2)
	}
	cfg.Arbiter = arbiter
	var dispatch topaz.DispatchPolicy
	if *sched != "" {
		dispatch, ok = topaz.PolicyByName(*sched)
		if !ok {
			fmt.Fprintf(os.Stderr, "fireflysim: unknown dispatch policy %q (known: %s)\n",
				*sched, strings.Join(topaz.PolicyNames(), ", "))
			os.Exit(2)
		}
	}
	cfg.Seed = *seed
	cfg.LineWords = *lineWords
	if *cacheLines > 0 {
		cfg.CacheLines = *cacheLines
	}
	if *faults != "" {
		fcfg, err := fault.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = &fcfg
	}
	m := machine.New(cfg)

	var checker *check.Checker
	if *checkFlag {
		var err error
		checker, err = check.Attach(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(2)
		}
	}

	if *tracePath != "" {
		if *traceFormat != "jsonl" && *traceFormat != "chrome" {
			fmt.Fprintf(os.Stderr, "fireflysim: unknown trace format %q (known: jsonl, chrome)\n", *traceFormat)
			os.Exit(2)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: %v\n", err)
			os.Exit(1)
		}
		var sink interface {
			obs.Observer
			Close() error
		}
		if *traceFormat == "jsonl" {
			sink = obs.NewJSONL(f)
		} else {
			sink = obs.NewChrome(f)
		}
		m.Trace(sink)
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "fireflysim: closing trace: %v\n", err)
			}
			f.Close()
		}()
	}

	cyc := func(s float64) uint64 { return uint64(s * 1e7) }

	var travelSnap *machine.Snapshot
	switch *wl {
	case "synthetic":
		m.AttachSyntheticLoad(trace.SyntheticLoad{
			MissRate:           *miss,
			ShareFraction:      *share,
			SharedReadFraction: *share / 2,
		})
		m.Warmup(cyc(*warmup))
		if *travel > 0 {
			if *checkFlag {
				fmt.Fprintln(os.Stderr, "fireflysim: -travel is incompatible with -check (the oracle's shadow state cannot rewind)")
				os.Exit(2)
			}
			var err error
			if travelSnap, err = m.Snapshot(); err != nil {
				fmt.Fprintf(os.Stderr, "fireflysim: -travel: %v\n", err)
				os.Exit(2)
			}
			if *travel < uint64(travelSnap.Cycle()) {
				fmt.Fprintf(os.Stderr, "fireflysim: -travel %d is before the post-warmup snapshot at cycle %d\n",
					*travel, uint64(travelSnap.Cycle()))
				os.Exit(2)
			}
		}
		m.RunSeconds(*seconds)

	case "exerciser":
		k := topaz.NewKernel(m, topaz.Config{Quantum: 1500, Dispatch: dispatch, Seed: *seed})
		ex := workload.NewExerciser(k, workload.ExerciserConfig{
			Threads: 16, Rounds: 1_000_000, SharedFraction: 0.35, Seed: *seed,
		})
		ex.Step(cyc(*warmup))
		m.ResetStats()
		ex.Step(cyc(*seconds))

	case "make":
		k := topaz.NewKernel(m, topaz.Config{Quantum: 2000, AvoidMigration: true, Dispatch: dispatch, Seed: *seed})
		res := workload.RunMake(k, workload.StandardBuild(8, 40_000), cyc(*seconds)*100)
		fmt.Printf("parallel make: finished=%v in %.2f Mcycles (ok=%v)\n",
			len(res.Finished), float64(res.Cycles)/1e6, res.OK)

	case "pipeline":
		k := topaz.NewKernel(m, topaz.Config{Quantum: 2000, Dispatch: dispatch, Seed: *seed})
		res := workload.RunPipeline(k, workload.PipelineConfig{}, cyc(*seconds)*100)
		fmt.Printf("pipeline: %d items in %.2f Mcycles (ok=%v)\n",
			len(res.Output), float64(res.Cycles)/1e6, res.OK)

	case "compiler":
		k := topaz.NewKernel(m, topaz.Config{Quantum: 2000, Dispatch: dispatch, Seed: *seed})
		res := workload.RunCompiler(k, workload.CompilerConfig{}, cyc(*seconds)*100)
		fmt.Printf("parallel compile: %d procedures in %.2f Mcycles (ok=%v)\n",
			len(res.Compiled), float64(res.Cycles)/1e6, res.OK)

	default:
		fmt.Fprintf(os.Stderr, "fireflysim: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if *travel > 0 && travelSnap == nil {
		fmt.Fprintf(os.Stderr, "fireflysim: -travel only supports the synthetic workload (got %q)\n", *wl)
		os.Exit(2)
	}

	fmt.Print(m.Report())

	if travelSnap != nil {
		if err := m.Restore(travelSnap); err != nil {
			fmt.Fprintf(os.Stderr, "fireflysim: -travel restore: %v\n", err)
			os.Exit(1)
		}
		m.Run(*travel - uint64(travelSnap.Cycle()))
		fmt.Printf("\ntime-travel: restored to cycle %d, replayed to cycle %d\n",
			uint64(travelSnap.Cycle()), uint64(m.Clock().Now()))
		fmt.Print(m.Report())
	}

	if plan := m.Faults(); plan != nil {
		fs := plan.Stats()
		var mchecks, offline uint64
		for i := 0; i < cfg.Processors; i++ {
			mchecks += m.Cache(i).Stats().MachineChecks
		}
		for _, p := range m.Processors() {
			if p.Halted() {
				offline++
			}
		}
		fmt.Printf("faults: %d injected (bus parity %d, bus timeout %d, mem soft %d, mem uncorrectable %d, dma nxm %d, dma stall %d, tag parity %d); %d machine checks\n",
			fs.Total(), fs.BusParity.Value(), fs.BusTimeouts.Value(),
			fs.MemSoft.Value(), fs.MemUncorrect.Value(),
			fs.DMANXM.Value(), fs.DMAStalls.Value(), fs.TagParity.Value(), mchecks)
	}

	if checker != nil {
		checker.Walk()
		fmt.Printf("coherence check: %d checked ops, %d walks\n", checker.Checked(), checker.Walks())
		if checker.Ok() {
			fmt.Println("coherence check: PASS")
		} else {
			for _, v := range checker.Violations() {
				fmt.Printf("coherence check: VIOLATION %v\n", v)
			}
			if n := checker.Dropped(); n > 0 {
				fmt.Printf("coherence check: %d further violations not shown\n", n)
			}
			os.Exit(1)
		}
	}
}
