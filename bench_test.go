// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, wrapping the drivers in
// internal/experiments), the ablations DESIGN.md calls out, and
// microbenchmarks of the simulator's hot paths. Regenerate everything
// with:
//
//	go test -bench=. -benchmem
//
// Table/figure benchmarks report domain metrics via b.ReportMetric where
// a single number summarizes the artifact.
package firefly_test

import (
	"fmt"
	"testing"

	"firefly"
	"firefly/internal/cluster"
	"firefly/internal/core"
	"firefly/internal/display"
	"firefly/internal/experiments"
	"firefly/internal/machine"
	"firefly/internal/mbus"
	"firefly/internal/model"
	"firefly/internal/qbus"
	"firefly/internal/rpc"
	"firefly/internal/sim"
)

// BenchmarkTable1 regenerates Table 1 (estimated performance) from the
// §5.2 analytic model.
func BenchmarkTable1(b *testing.B) {
	var tp float64
	for i := 0; i < b.N; i++ {
		pts := model.Table1()
		tp = pts[len(pts)-1].TP
	}
	b.ReportMetric(tp, "TP@12cpu")
}

// BenchmarkTable1Simulated cross-checks Table 1 on the cycle simulator,
// running the full NP sweep through the sweep engine (parallel across
// points when -workers / GOMAXPROCS allows).
func BenchmarkTable1Simulated(b *testing.B) {
	var out experiments.Outcome
	for i := 0; i < b.N; i++ {
		out = experiments.Table1Sim(experiments.Quick)
	}
	if len(out.Text) == 0 {
		b.Fatal("empty outcome")
	}
}

// BenchmarkTable2 regenerates Table 2 (measured performance) by running
// the threads exerciser on a five-CPU machine.
func BenchmarkTable2(b *testing.B) {
	var row experiments.Table2Row
	for i := 0; i < b.N; i++ {
		row = experiments.MeasureExerciser(5, 100_000, 1_000_000)
	}
	b.ReportMetric(row.Total, "refs/s/cpu")
	b.ReportMetric(row.BusLoad, "busload")
}

// BenchmarkFigure3Transitions exercises every arc of the Figure 3 state
// diagram through the cache controller.
func BenchmarkFigure3Transitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Figure3(experiments.Quick)
		if len(out.Text) == 0 {
			b.Fatal("empty outcome")
		}
	}
}

// BenchmarkFigure4Timing runs the scripted MRead/MWrite pair that renders
// the Figure 4 bus timing.
func BenchmarkFigure4Timing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Figure4(experiments.Quick)
		if len(out.Text) == 0 {
			b.Fatal("empty outcome")
		}
	}
}

// BenchmarkProtocolComparison runs the coherence protocol bake-off
// (X-proto in DESIGN.md).
func BenchmarkProtocolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ProtocolComparison(experiments.Quick)
	}
}

// BenchmarkMigrationAblation measures the scheduler's migration avoidance
// (X-migrate).
func BenchmarkMigrationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.MigrationAblation(experiments.Quick)
	}
}

// BenchmarkCVAXSpeedup measures the second-version upgrade (X-cvax).
func BenchmarkCVAXSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CVAXSpeedup(experiments.Quick)
	}
}

// BenchmarkRPCThroughput measures the §6 RPC bandwidth knee (X-rpc).
func BenchmarkRPCThroughput(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = rpc.Run(rpc.Config{}, 3, 0.5).Mbps
	}
	b.ReportMetric(mbps, "Mbit/s@3threads")
}

// BenchmarkQBusLoad measures DMA bandwidth consumption (X-qbus).
func BenchmarkQBusLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.QBusLoad(experiments.Quick)
	}
}

// BenchmarkMDCThroughput measures display controller paint rates (X-mdc).
func BenchmarkMDCThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.MDCThroughput(experiments.Quick)
	}
}

// BenchmarkParallelMake measures the §6 parallel make speedup (X-make).
func BenchmarkParallelMake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ParallelMake(experiments.Quick)
	}
}

// BenchmarkFigure2Structure instantiates the Topaz structure (Figure 2).
func BenchmarkFigure2Structure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(experiments.Quick)
	}
}

// BenchmarkSyscallEmulation measures the Ultrix emulation cost
// (§6 footnote 5).
func BenchmarkSyscallEmulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.SyscallEmulation(experiments.Quick)
	}
}

// BenchmarkGCOffload runs the concurrent garbage collection experiment
// (§6's collector-on-another-processor claim).
func BenchmarkGCOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.GCOffload(experiments.Quick)
	}
}

// BenchmarkFileIO runs the file system read-ahead / write-behind
// experiment (§6).
func BenchmarkFileIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FileIO(experiments.Quick)
	}
}

// BenchmarkLineSize runs the cache line size ablation.
func BenchmarkLineSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.LineSizeAblation(experiments.Quick)
	}
}

// BenchmarkOnChipData runs the CVAX on-chip data cache ablation.
func BenchmarkOnChipData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.OnChipDataAblation(experiments.Quick)
	}
}

// BenchmarkSweepSerial runs the Table 1 sweep pinned to one worker — the
// baseline for BenchmarkSweepParallel. The two must produce byte-identical
// Outcome.Text (see TestSweepDeterministic); only wall time may differ.
func BenchmarkSweepSerial(b *testing.B) {
	prev := experiments.SetWorkers(1)
	defer experiments.SetWorkers(prev)
	for i := 0; i < b.N; i++ {
		experiments.Table1Sim(experiments.Quick)
	}
}

// BenchmarkSweepParallel runs the same sweep with one worker per
// available CPU. On a multi-core runner this should approach
// serial/NumCPU; on a single core it measures pool overhead.
func BenchmarkSweepParallel(b *testing.B) {
	prev := experiments.SetWorkers(0)
	defer experiments.SetWorkers(prev)
	for i := 0; i < b.N; i++ {
		experiments.Table1Sim(experiments.Quick)
	}
}

// BenchmarkSweepWarmStart measures the Table 1 sweep with the
// warm-start snapshot cache primed: every point restores a post-warmup
// snapshot instead of re-running the warmup. The first Table1Sim call
// (outside the timer) pays the warmups and populates the cache;
// compare against BenchmarkSweepSerial/Parallel for the saving.
func BenchmarkSweepWarmStart(b *testing.B) {
	experiments.Table1Sim(experiments.Quick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table1Sim(experiments.Quick)
	}
}

// --- Microbenchmarks of the simulator's hot paths ---

// BenchmarkCacheHit measures the cache controller's hit path.
func BenchmarkCacheHit(b *testing.B) {
	clock := &sim.Clock{}
	bus := mbus.New(clock, mbus.FixedPriority)
	c := core.NewMicroVAXCache(clock, core.Firefly{})
	bus.Attach(c, c, nil)
	// Fill one line via the bus.
	c.Submit(core.Access{Write: true, Addr: 0x40, Data: 1})
	for c.Busy() {
		clock.Tick()
		bus.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(core.Access{Addr: 0x40})
	}
}

// BenchmarkBusTransaction measures a full four-cycle MBus operation.
func BenchmarkBusTransaction(b *testing.B) {
	clock := &sim.Clock{}
	bus := mbus.New(clock, mbus.FixedPriority)
	c := core.NewMicroVAXCache(clock, core.Firefly{})
	bus.Attach(c, c, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(core.Access{Write: true, Addr: mbus.Addr(i*4) & 0xfffff, Data: uint32(i)})
		for c.Busy() {
			clock.Tick()
			bus.Step()
		}
	}
}

// BenchmarkMachineCycle measures one whole-machine step of a 5-CPU
// Firefly under load. Compare with BenchmarkMachineCycleTraced: the
// difference is the total cost of the observability layer's nil checks,
// which must stay in the noise.
func BenchmarkMachineCycle(b *testing.B) {
	m := machine.New(machine.MicroVAXConfig(5))
	m.AttachSyntheticLoad(firefly.SyntheticLoad{MissRate: 0.2, ShareFraction: 0.1, SharedReadFraction: 0.05})
	m.Warmup(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkMachineCycleTraced is the same machine with tracing enabled
// into a ring buffer — the upper bound a live capture costs.
func BenchmarkMachineCycleTraced(b *testing.B) {
	m := machine.New(machine.MicroVAXConfig(5))
	m.AttachSyntheticLoad(firefly.SyntheticLoad{MissRate: 0.2, ShareFraction: 0.1, SharedReadFraction: 0.05})
	m.Trace(firefly.NewTraceRing(1 << 16))
	m.Warmup(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkMachineCycleIdle measures the effective per-cycle cost of a
// machine whose processors are halted while a disk re-queues reads
// forever: the workload is nothing but seek waits, DMA word pacing,
// and completion interrupts, so Run spends almost every cycle in the
// event-scan-and-skip path. Each benchmark iteration is one machine
// cycle (Run(b.N)), so ns/op is the effective ns per idle cycle — the
// number the big-step path exists to shrink.
func BenchmarkMachineCycleIdle(b *testing.B) {
	m := machine.New(machine.MicroVAXConfig(5))
	m.AttachSyntheticLoad(firefly.SyntheticLoad{MissRate: 0.2, ShareFraction: 0.1, SharedReadFraction: 0.05})
	maps := &qbus.MapRegisters{}
	maps.MapRange(0, 0x40000, 1<<15)
	eng := qbus.NewEngine(m.Clock(), m.Bus(), maps, 0)
	disk := qbus.NewDisk(m.Clock(), m.Bus(), eng, qbus.DiskConfig{})
	m.AddDevice(eng)
	m.AddDevice(disk)
	m.Warmup(10_000)
	for i := 0; i < m.Config().Processors; i++ {
		m.CPU(i).Halt()
	}
	var requeue func()
	requeue = func() { disk.Read(3, 0, requeue) }
	requeue()
	b.ResetTimer()
	m.Run(uint64(b.N))
}

// BenchmarkClusterCycle measures one lockstep step of a two-Firefly
// cluster carrying live RPC traffic: the shared wire plus two 2-CPU
// MicroVAX machines, each with a Topaz kernel, a DEQNA, and DMA in
// flight. Compare with BenchmarkClusterMemberCycle — the ratio is what
// the second machine and the Ethernet cost per cluster cycle.
func BenchmarkClusterCycle(b *testing.B) {
	cl := cluster.New(cluster.Config{Seed: 7})
	cl.Node(1).StartServer()
	cl.Node(0).StartCallers(3, 1, 0)
	cl.Run(200_000) // fill the RPC pipeline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Step()
	}
}

// BenchmarkClusterMemberCycle is the single-machine baseline for
// BenchmarkClusterCycle: one 2-CPU MicroVAX of the cluster's member
// configuration stepping alone under a comparable synthetic load, no
// wire and no second machine.
func BenchmarkClusterMemberCycle(b *testing.B) {
	m := machine.New(machine.MicroVAXConfig(2))
	m.AttachSyntheticLoad(firefly.SyntheticLoad{MissRate: 0.2, ShareFraction: 0.1, SharedReadFraction: 0.05})
	m.Warmup(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkClusterRPC pushes RPC calls across the simulated wire at the
// §6 knee (three caller threads) and reports the payload bandwidth the
// cluster sustains.
func BenchmarkClusterRPC(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		const secs = 0.1
		cl := cluster.New(cluster.Config{Seed: 7})
		cl.Node(1).StartServer()
		cl.Node(0).StartCallers(3, 1, 0)
		cl.RunSeconds(secs)
		mbps = float64(cl.Node(0).Stats().BytesMoved.Value()) * 8 / secs / 1e6
	}
	b.ReportMetric(mbps, "Mbit/s@3threads")
}

// buildFleet constructs the bridged fleet the scaling benchmarks
// share: nodes machines at eight per Ethernet segment, one RPC server
// on segment 0, a three-thread caller on the same wire, and a
// three-thread caller across the bridge. The remaining machines are
// quiesced — CPUs halted, no kernel threads — the fleet shape where a
// few nodes carry traffic and the rest sit powered on but idle, which
// is exactly where the windowed engine's machine-level big-stepping
// pays (an idle member costs one next-event scan per window instead of
// a Step per cycle).
func buildFleet(nodes int) *cluster.Cluster {
	cl := cluster.New(cluster.Config{Machines: nodes, Segments: nodes / 8, Seed: 7})
	cl.Node(0).StartServer()
	cl.Node(1).StartCallers(3, 0, 0)
	cl.Node(9).StartCallers(3, 0, 0)
	for i := 2; i < cl.Size(); i++ {
		if i == 9 {
			continue
		}
		m := cl.Machine(i)
		for p := 0; p < m.Config().Processors; p++ {
			m.CPU(p).Halt()
		}
	}
	cl.Run(200_000) // fill the RPC pipeline
	return cl
}

// BenchmarkFleetCycleStep is the serial baseline for the fleet: the
// per-cycle Step loop pays the full cost of ticking all 64 machines,
// 8 segments, and the bridge every cluster cycle, busy or not. This is
// what every cluster cycle cost before the windowed engine.
func BenchmarkFleetCycleStep(b *testing.B) {
	cl := buildFleet(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Step()
	}
}

// BenchmarkFleetCycleRun drives fleets of varying size through the
// windowed engine at varying worker counts: machines big-step
// independently inside each event-free window, so idle members skip
// their quiet stretches instead of paying per-cycle overhead, and the
// in-window runs shard across workers. Output is byte-identical at any
// worker count by the engine's determinism contract; ns/op is one
// cluster cycle, so aggregate machine-cycles/sec = nodes / ns_op.
func BenchmarkFleetCycleRun(b *testing.B) {
	for _, nodes := range []int{16, 64} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("nodes=%d/workers=%d", nodes, workers), func(b *testing.B) {
				cl := buildFleet(nodes)
				cl.SetWorkers(workers)
				b.ResetTimer()
				cl.Run(uint64(b.N))
			})
		}
	}
}

// BenchmarkBitBlt measures a 64x64 frame buffer copy.
func BenchmarkBitBlt(b *testing.B) {
	src := display.NewBitmap(256, 256)
	dst := display.NewBitmap(256, 256)
	display.Fill(src, display.Rect{X: 0, Y: 0, W: 256, H: 256}, display.OpSet)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		display.BitBlt(dst, display.Rect{X: 8, Y: 8, W: 64, H: 64}, src, 0, 0, display.OpXor)
	}
}

// BenchmarkRPCMarshal measures message marshalling.
func BenchmarkRPCMarshal(b *testing.B) {
	payload := make([]byte, 1024)
	msg := &rpc.Message{Kind: rpc.Call, ID: 1, Proc: 7, Payload: payload}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := msg.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rpc.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelInversion measures the L(NP) numeric inversion.
func BenchmarkModelInversion(b *testing.B) {
	p := firefly.MicroVAXModel()
	for i := 0; i < b.N; i++ {
		p.LoadFor(float64(2 + i%10))
	}
}
