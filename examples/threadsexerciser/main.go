// Threads exerciser: the program behind the paper's Table 2. Forks
// workers that hammer the Topaz Threads primitives — locks, condition
// variable rendezvous, deliberate yields — then verifies the results and
// prints the hardware-counter-style measurement for one-CPU and five-CPU
// systems.
package main

import (
	"fmt"

	"firefly"
	"firefly/internal/workload"
)

func measure(nproc int) {
	m := firefly.NewMicroVAX(nproc)
	k := firefly.Boot(m, firefly.KernelConfig{Quantum: 1500, Seed: 7})
	ex := workload.NewExerciser(k, workload.ExerciserConfig{
		Threads:        16,
		Rounds:         1_000_000, // endless; the interval below ends first
		SharedFraction: 0.35,
	})

	ex.Step(300_000) // warm up
	m.ResetStats()
	ex.Step(3_000_000) // measure 0.3 simulated seconds

	rep := m.Report()
	mean := rep.MeanCPU()
	fmt.Printf("%d-CPU system (K refs/sec per CPU):\n", nproc)
	fmt.Printf("  reads %.0f, writes %.0f, total %.0f\n",
		mean.Reads/1000, mean.Writes/1000, mean.Total/1000)
	fmt.Printf("  MBus: reads %.0f, writes w/ MShared %.0f, w/o %.0f, victims %.0f\n",
		mean.MBusReads/1000, mean.MBusWritesShared/1000,
		mean.MBusWritesClean/1000, mean.MBusVictims/1000)
	fmt.Printf("  bus load L=%.2f, miss rate M=%.2f\n", rep.BusLoad, mean.MissRate)
	fmt.Printf("  scheduler: %d context switches, %d migrations\n\n",
		k.Stats().ContextSwitches, k.Stats().Migrations)
}

func main() {
	fmt.Println("Topaz Threads exerciser (the paper's Table 2 program)")
	fmt.Println()
	measure(1)
	measure(5)
	fmt.Println("Compare with Table 2: sharing shows up only on the multiprocessor,")
	fmt.Println("write-throughs dominate victim writes, and the one-CPU miss rate is")
	fmt.Println("elevated by context-switch cold starts.")
}
