// Network: two Fireflies on one Ethernet. SRC's world was "distributed
// personal computing": workstations speaking RPC over the wire. This
// example runs two simulated machines in lockstep, cables their DEQNA
// controllers together, and performs a marshalled RPC call from one to
// the other — request DMA'd out of the client's memory, 10 Mbit/s wire
// time, receive DMA into the server's memory, and a reply with a data
// payload coming back.
package main

import (
	"fmt"

	"firefly"
	"firefly/internal/qbus"
	"firefly/internal/rpc"
)

// station is one Firefly with its I/O plumbing.
type station struct {
	name   string
	m      *firefly.Machine
	maps   *qbus.MapRegisters
	engine *qbus.Engine
	eth    *qbus.Ethernet
}

func newStation(name string) *station {
	m := firefly.NewMicroVAX(2)
	for _, p := range m.Processors() {
		p.Halt() // the demo drives I/O directly; CPUs would run Topaz
	}
	maps := &qbus.MapRegisters{}
	engine := qbus.NewEngine(m.Clock(), m.Bus(), maps, 0)
	m.AddDevice(engine)
	eth := qbus.NewEthernet(m.Clock(), m.Bus(), engine, qbus.EthernetConfig{})
	m.AddDevice(eth)
	maps.MapRange(0, 0x400000, 1<<20)
	return &station{name: name, m: m, maps: maps, engine: engine, eth: eth}
}

// poke writes a marshalled message into the station's memory at the DMA
// window.
func (s *station) poke(qaddr uint32, buf []byte) int {
	words := (len(buf) + 3) / 4
	for i := 0; i < words; i++ {
		var w uint32
		for b := 0; b < 4; b++ {
			if i*4+b < len(buf) {
				w |= uint32(buf[i*4+b]) << (8 * uint(3-b))
			}
		}
		phys, err := s.maps.Translate(qaddr + uint32(i*4))
		if err != nil {
			panic(err)
		}
		s.m.Memory().Poke(phys, w)
	}
	return words
}

// peek reads n bytes back out of the DMA window.
func (s *station) peek(qaddr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		phys, err := s.maps.Translate(qaddr + uint32(i/4*4))
		if err != nil {
			panic(err)
		}
		w := s.m.Memory().Peek(phys)
		out[i] = byte(w >> (8 * uint(3-i%4)))
	}
	return out
}

func main() {
	alpha := newStation("alpha")
	beta := newStation("beta")

	// The cable: each controller's transmissions arrive at the other.
	alpha.eth.OnWire = func(p qbus.Packet) { beta.eth.Receive(p, 0x8000, nil) }
	beta.eth.OnWire = func(p qbus.Packet) { alpha.eth.Receive(p, 0x8000, nil) }

	step := func(cycles int) {
		for i := 0; i < cycles; i++ {
			alpha.m.Step()
			beta.m.Step()
		}
	}

	// Alpha marshals a call and transmits it.
	call := &rpc.Message{Kind: rpc.Call, ID: 1, Proc: 42, Payload: []byte("read /topaz/README")}
	buf, err := call.Marshal()
	if err != nil {
		panic(err)
	}
	words := alpha.poke(0x0, buf)
	start := alpha.m.Clock().Now()
	fmt.Printf("alpha -> beta: %d-byte call (proc %d)\n", len(buf), call.Proc)
	alpha.eth.Transmit(0x0, words, nil)

	// Run until beta's controller has interrupted its I/O processor.
	for beta.eth.Stats().Received.Value() == 0 {
		step(1000)
	}
	got, err := rpc.Unmarshal(beta.peek(0x8000, len(buf)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("beta received: kind=%d id=%d proc=%d payload=%q\n",
		got.Kind, got.ID, got.Proc, string(got.Payload))

	// Beta replies with a frame's worth of file data (larger transfers
	// fragment, as in internal/rpc's WireBits accounting).
	data := make([]byte, 1400)
	for i := range data {
		data[i] = byte('A' + i%26)
	}
	reply := &rpc.Message{Kind: rpc.Reply, ID: got.ID, Proc: got.Proc, Payload: data}
	rbuf, err := reply.Marshal()
	if err != nil {
		panic(err)
	}
	rwords := beta.poke(0x10000, rbuf)
	beta.eth.Transmit(0x10000, rwords, nil)
	for alpha.eth.Stats().Received.Value() == 0 {
		step(1000)
	}
	rgot, err := rpc.Unmarshal(alpha.peek(0x8000, len(rbuf)))
	if err != nil {
		panic(err)
	}
	elapsed := float64(alpha.m.Clock().Now()-start) * 100e-9
	fmt.Printf("alpha received reply: %d bytes of payload, first 13: %q\n",
		len(rgot.Payload), string(rgot.Payload[:13]))
	fmt.Printf("\nround trip: %.2f ms simulated (wire + DMA both ways)\n", elapsed*1000)
	fmt.Printf("payload bandwidth: %.2f Mbit/s over the 10 Mbit/s Ethernet\n",
		float64(len(data)*8)/elapsed/1e6)
	fmt.Println("\nEach side's DMA crossed its own MBus through the QBus engine;")
	fmt.Printf("alpha bus ops: %d, beta bus ops: %d\n",
		alpha.m.Bus().Stats().TotalOps(), beta.m.Bus().Stats().TotalOps())
}
