// Display: drive the MDC like the Trestle window manager would — fills,
// screen-to-screen scrolls, text through the font cache, a cursor drawn
// with XOR — then render the frame buffer region as ASCII art and report
// the controller's measured throughput.
package main

import (
	"fmt"
	"strings"

	"firefly"
	"firefly/internal/display"
)

func main() {
	m := firefly.NewMicroVAX(1)
	m.CPU(0).Halt() // the demo drives the controller directly
	mdc := display.New(m.Clock(), m.Bus(), m.Memory(), display.Config{})
	m.AddDevice(mdc)

	run := func(want uint32) {
		for mdc.Completed() < want {
			m.Run(10_000)
		}
	}

	// A window with a title bar, like Trestle would paint.
	mdc.Submit(display.CmdFill{R: display.Rect{X: 4, Y: 4, W: 120, H: 40}, Op: display.OpSet})
	mdc.Submit(display.CmdFill{R: display.Rect{X: 6, Y: 12, W: 116, H: 30}, Op: display.OpClear})
	mdc.Submit(display.CmdPaintString{S: "Topaz", X: 8, Y: 16, Op: display.OpOr})
	// Scroll the window body left by 8 pixels (overlapping self-blit).
	mdc.Submit(display.CmdBlt{R: display.Rect{X: 6, Y: 12, W: 108, H: 30}, SX: 14, SY: 12, Op: display.OpSrc})
	// An XOR cursor: drawn and (idempotently) removable.
	mdc.Submit(display.CmdFill{R: display.Rect{X: 30, Y: 20, W: 6, H: 10}, Op: display.OpInvert})
	run(5)

	fmt.Println("Frame buffer (top-left 128x48, 2x2 pixel blocks):")
	fb := mdc.Frame()
	for y := 0; y < 48; y += 2 {
		var row strings.Builder
		for x := 0; x < 128; x += 2 {
			on := fb.Get(x, y) + fb.Get(x+1, y) + fb.Get(x, y+1) + fb.Get(x+1, y+1)
			switch {
			case on >= 3:
				row.WriteByte('#')
			case on >= 1:
				row.WriteByte('+')
			default:
				row.WriteByte(' ')
			}
		}
		fmt.Println(row.String())
	}

	// Throughput, measured the way §5 quotes it.
	start := m.Clock().Now()
	mdc.Submit(display.CmdFill{
		R:  display.Rect{X: 0, Y: 0, W: display.FrameWidth, H: display.VisibleHeight},
		Op: display.OpClear,
	})
	run(6)
	fillSecs := float64(m.Clock().Now()-start) * 100e-9
	fmt.Printf("\nFull-screen fill: %.1f Mpixel/s (paper: 16)\n",
		float64(display.FrameWidth*display.VisibleHeight)/fillSecs/1e6)

	line := strings.Repeat("abcdefghij", 10)
	start = m.Clock().Now()
	for i := 0; i < 10; i++ {
		mdc.Submit(display.CmdPaintString{S: line, X: 0, Y: i * 13, Op: display.OpOr})
	}
	run(16)
	textSecs := float64(m.Clock().Now()-start) * 100e-9
	fmt.Printf("Font-cache text:  %.0f chars/s (paper: ~20,000)\n", 1000/textSecs)

	st := mdc.Stats()
	fmt.Printf("\nController activity: %d commands, %d pixels, %d queue polls, %d input deposits\n",
		st.Commands.Value(), st.PixelsPainted.Value(), st.PollReads.Value(), st.Deposits.Value())
}
