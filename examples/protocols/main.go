// Protocol bake-off: run the Firefly protocol against the baselines the
// paper discusses (write-through invalidate, Berkeley ownership, Dragon
// update, MESI) on identical machines over a sharing sweep, and show the
// producer/consumer pattern where update protocols shine.
package main

import (
	"fmt"

	"firefly"
	"firefly/internal/core"
	"firefly/internal/machine"
)

func main() {
	fmt.Println("Coherence protocols on a 4-CPU Firefly, sharing sweep")
	fmt.Printf("%-26s", "protocol")
	shares := []float64{0, 0.1, 0.2, 0.4}
	for _, s := range shares {
		fmt.Printf("  S=%.1f        ", s)
	}
	fmt.Println()

	for _, proto := range firefly.Protocols() {
		fmt.Printf("%-26s", proto.Name())
		for _, s := range shares {
			cfg := machine.MicroVAXConfig(4)
			cfg.Protocol = proto
			m := machine.New(cfg)
			m.AttachSyntheticLoad(firefly.SyntheticLoad{MissRate: 0.15, ShareFraction: s, SharedReadFraction: s})
			m.Warmup(100_000)
			m.RunSeconds(0.01)
			rep := m.Report()
			fmt.Printf("  %4.0fK @ L=%.2f", rep.MeanCPU().Total/1000, rep.BusLoad)
		}
		fmt.Println()
	}

	fmt.Println("\nProducer/consumer ping-pong (50 handoffs of one hot line):")
	fmt.Printf("%-26s %s\n", "protocol", "consumer re-misses")
	for _, proto := range firefly.Protocols() {
		cfg := machine.MicroVAXConfig(2)
		cfg.Protocol = proto
		m := machine.New(cfg)
		for _, p := range m.Processors() {
			p.Halt() // drive the caches directly
		}
		drive := func(ci int, acc core.Access) {
			c := m.Cache(ci)
			if c.Submit(acc) {
				return
			}
			for c.Busy() {
				m.Run(1)
			}
		}
		drive(0, core.Access{Addr: 0x40})
		drive(1, core.Access{Addr: 0x40})
		before := m.Cache(1).Stats().ReadMisses
		for i := 0; i < 50; i++ {
			drive(0, core.Access{Write: true, Addr: 0x40, Data: uint32(i)})
			drive(1, core.Access{Addr: 0x40})
		}
		fmt.Printf("%-26s %d\n", proto.Name(), m.Cache(1).Stats().ReadMisses-before)
	}
	fmt.Println("\nUpdate protocols (firefly, dragon) keep the consumer's copy fresh;")
	fmt.Println("invalidation protocols force a re-miss per handoff — the paper's")
	fmt.Println("case for conditional write-through under true sharing.")
}
