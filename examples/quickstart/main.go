// Quickstart: build the standard five-processor Firefly, run a synthetic
// workload with the paper's characterization (miss rate 0.2, sharing
// 0.1), and compare the measurement against the §5.2 analytic model.
package main

import (
	"fmt"

	"firefly"
)

func main() {
	// The standard machine: five MicroVAX 78032 processors, 16 KB snoopy
	// caches running the Firefly protocol, 16 MB of storage on the MBus.
	m := firefly.NewMicroVAX(5)

	// Drive each processor with the parameterized reference generator:
	// 20% of references miss, 10% of writes touch shared data.
	m.AttachSyntheticLoad(firefly.SyntheticLoad{MissRate: 0.2, ShareFraction: 0.1, SharedReadFraction: 0.05})

	// Warm the caches, then measure 20 simulated milliseconds.
	m.Warmup(200_000)
	m.RunSeconds(0.02)

	rep := m.Report()
	fmt.Print(rep)

	// The paper's model predicts the same quantities analytically.
	mdl := firefly.MicroVAXModel()
	pt := mdl.At(5)
	fmt.Printf("\nAnalytic model for 5 CPUs: L=%.2f, TPI=%.1f, RP=%.2f, TP=%.2f\n",
		pt.L, pt.TPI, pt.RP, pt.TP)
	fmt.Printf("Simulated:                 L=%.2f, TPI=%.1f\n",
		rep.BusLoad, rep.MeanTPI())
	fmt.Println("\nThe cache's job on this machine is not latency but bus shielding:")
	mean := rep.MeanCPU()
	perCPUOps := mean.MBusReads + mean.MBusWritesShared + mean.MBusWritesClean + mean.MBusVictims
	fmt.Printf("each CPU makes %.0fK refs/s but only %.0fK MBus ops/s reach the bus (%.0f%%).\n",
		mean.Total/1000, perCPUOps/1000, perCPUOps/mean.Total*100)
}
