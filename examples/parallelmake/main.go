// Parallel make: the §6 showcase application. A build DAG (scan -> parse
// -> many compilations -> link) runs as one thread per target, each
// joining its dependencies; the example sweeps processor counts and
// prints the speedup curve against the serial and critical-path bounds.
package main

import (
	"fmt"

	"firefly"
	"firefly/internal/workload"
)

func main() {
	g := workload.StandardBuild(8, 40_000)
	fmt.Printf("build graph: %d targets, serial cost %.2f M instructions, critical path %.2f M\n\n",
		len(g.Targets()), float64(g.SerialCost())/1e6, float64(g.CriticalPath())/1e6)

	var base float64
	for _, n := range []int{1, 2, 4, 6} {
		m := firefly.NewMicroVAX(n)
		k := firefly.Boot(m, firefly.KernelConfig{Quantum: 2000, AvoidMigration: true})
		res := workload.RunMake(k, workload.StandardBuild(8, 40_000), 3_000_000_000)
		if !res.OK {
			fmt.Printf("%d CPUs: did not finish\n", n)
			continue
		}
		ms := float64(res.Cycles) / 1e4 // cycles -> ms
		if base == 0 {
			base = ms
		}
		fmt.Printf("%d CPUs: makespan %7.1f ms, speedup %.2fx\n", n, ms, base/ms)
	}
	fmt.Println("\nSpeedup flattens at the DAG's parallelism limit: the serial scan/")
	fmt.Println("parse prefix and the final link bound it (Amdahl), just as the")
	fmt.Println("hardware's five processors bounded the original.")
}
