// Workstation: the whole SRC daily-driver experience on one simulated
// Firefly. A five-processor machine boots Topaz, Trestle opens windows on
// the MDC, the file system's read-ahead and write-behind daemons serve a
// file scan, a parallel make rebuilds a package tree, and the mouse
// clicks between windows — all sharing the one MBus, exactly the
// coarse-grained concurrency story of §2 ("workstation users like to
// keep several activities running at once").
package main

import (
	"fmt"
	"strings"

	"firefly"
	"firefly/internal/display"
	"firefly/internal/fs"
	"firefly/internal/qbus"
	"firefly/internal/trestle"
	"firefly/internal/workload"
)

func main() {
	// --- hardware: 5 CPUs, MDC, disk behind the QBus DMA engine ---
	m := firefly.NewMicroVAX(5)
	mdc := display.New(m.Clock(), m.Bus(), m.Memory(), display.Config{})
	m.AddDevice(mdc)
	maps := &qbus.MapRegisters{}
	engine := qbus.NewEngine(m.Clock(), m.Bus(), maps, 0)
	m.AddDevice(engine)
	disk := qbus.NewDisk(m.Clock(), m.Bus(), engine, qbus.DiskConfig{SeekCycles: 3000})
	m.AddDevice(disk)
	maps.MapRange(0, 0x700000, 1<<16)

	// --- software: Topaz, the file system daemons, Trestle ---
	k := firefly.Boot(m, firefly.KernelConfig{Quantum: 1500, AvoidMigration: true})
	f := fs.New(k, disk, m.Memory(), maps, fs.Config{}, nil)
	wm := trestle.New(mdc)

	shell := wm.Create("shell", display.Rect{X: 20, Y: 20, W: 360, H: 200})
	mail := wm.Create("mail", display.Rect{X: 200, Y: 120, W: 360, H: 220})
	buildWin := wm.Create("make", display.Rect{X: 420, Y: 40, W: 320, H: 180})

	// A file on disk for the scan.
	for lba := uint32(0); lba < 24; lba++ {
		words := make([]uint32, fs.BlockWords)
		for w := range words {
			words[w] = lba<<8 | uint32(w)
		}
		disk.LoadSector(lba, words)
	}

	// --- the user's concurrent activities ---
	var scan fs.ReadResult
	k.Fork(fs.ReadSequentialProgram(f, 0, 24, 500, &scan), firefly.ThreadSpec{Name: "file-scan"}, nil)

	// The build: RunMake forks one thread per target and pumps the
	// machine until the DAG completes — the scan, the FS daemons, and the
	// MDC all advance on the same cycles.
	graph := workload.StandardBuild(6, 25_000)
	res := workload.RunMake(k, graph, 800_000_000)

	// Let the file scan finish if the build beat it.
	for i := 0; i < 10_000 && !scan.Done; i++ {
		m.Run(20_000)
	}
	wm.SetText(buildWin, []string{
		fmt.Sprintf("%d targets built", len(res.Finished)),
		fmt.Sprintf("%.1f ms", float64(res.Cycles)/1e4),
	})
	wm.SetText(shell, []string{"$ scan /src/topaz", fmt.Sprintf("%d blocks read", len(scan.Blocks))})
	wm.SetText(mail, []string{"From: taylor", "Subject: Firefly status", "", "Ship it."})

	// The user clicks the mail window; Trestle raises and focuses it.
	mdc.SetMouse(300, 200)
	wm.RouteMouseClick(300, 200)

	// Let the MDC drain its queue (and keep depositing input records).
	for mdc.Pending() > 0 {
		m.Run(20_000)
	}

	// --- report ---
	fmt.Println("Workstation session on a 5-CPU Firefly")
	fmt.Println()
	fmt.Printf("windows: %s\n", wm.Layout())
	fmt.Printf("focus:   %q (raised by the mouse click at 300,200)\n", wm.Focus().Title())
	fmt.Println()
	fmt.Printf("build:   %d targets in %.1f ms (ok=%v): %s...\n",
		len(res.Finished), float64(res.Cycles)/1e4, res.OK,
		strings.Join(res.Finished[:3], ", "))
	st := f.Stats()
	fmt.Printf("file:    %d blocks scanned, read-ahead hits %d, write-behinds %d\n",
		len(scan.Blocks), st.ReadAheadHit, st.WriteBehinds)
	dst := mdc.Stats()
	fmt.Printf("display: %d commands, %d pixels painted, %d input deposits\n",
		dst.Commands.Value(), dst.PixelsPainted.Value(), dst.Deposits.Value())
	rep := m.Report()
	fmt.Printf("machine: bus load L=%.2f over %.1f ms, %d context switches, %d migrations\n",
		rep.BusLoad, rep.Seconds*1000, k.Stats().ContextSwitches, k.Stats().Migrations)
	fmt.Println()
	fmt.Println("Everything above shared one MBus: CPU fills and write-throughs,")
	fmt.Println("the MDC's queue polling and BitBlt traffic, the disk DMA, and the")
	fmt.Println("60 Hz input deposits — the machine the paper set out to build.")
}
