// RPC server: the §6 data-transfer measurement. Sweeps outstanding calls
// through the Topaz RPC transport and prints the bandwidth curve whose
// knee the paper reports: "The remote server can sustain a bandwidth of
// 4.6 megabits per second using an average of three concurrent threads."
package main

import (
	"fmt"

	"firefly/internal/rpc"
)

func main() {
	fmt.Println("Topaz RPC data transfer: bandwidth vs outstanding calls")
	fmt.Println("(1 KB fragments over a 10 Mbit/s Ethernet; MicroVAX-era stage costs)")
	fmt.Println()
	fmt.Printf("%8s %10s %16s %12s %10s\n",
		"threads", "Mbit/s", "latency (µs)", "server util", "wire util")
	for _, n := range []int{1, 2, 3, 4, 5, 6, 8} {
		r := rpc.Run(rpc.Config{}, n, 2.0)
		fmt.Printf("%8d %10.2f %16.0f %12.2f %10.2f\n",
			n, r.Mbps, r.MeanLatencyUS, r.ServerUtil, r.WireUtil)
	}

	fmt.Println("\nEvery call's bytes really cross the transport: the server")
	fmt.Println("unmarshals each message and a corrupted one would be counted.")
	r := rpc.Run(rpc.Config{}, 3, 1.0)
	fmt.Printf("messages verified: %d ok, %d bad\n", r.MarshalledOK, r.MarshalledBad)

	fmt.Println("\nFragment size matters — larger fragments amortize fixed costs:")
	for _, bytes := range []int{256, 1024, 4096} {
		r := rpc.Run(rpc.Config{PayloadBytes: bytes}, 4, 1.0)
		fmt.Printf("  %4d-byte fragments: %.2f Mbit/s\n", bytes, r.Mbps)
	}
}
